"""Schedule builder: task structure per classification, recompute chains,
gradient lifetimes, swap-in policies."""

import pytest

from repro.graph import GraphBuilder
from repro.gpusim import StreamName, TaskKind
from repro.hw import CostModel, X86_V100
from repro.models import linear_chain, small_cnn
from repro.runtime import (
    Classification,
    CostModelDurations,
    MapClass,
    ScheduleOptions,
    SwapInPolicy,
    build_schedule,
)


def build(graph, cls, policy=SwapInPolicy.EAGER, **opts):
    dur = CostModelDurations(graph, CostModel(X86_V100))
    return build_schedule(graph, cls, dur, ScheduleOptions(policy=policy, **opts))


@pytest.fixture
def g():
    return small_cnn(with_residual=True)


class TestForwardStructure:
    def test_one_fwd_task_per_layer(self, g):
        sched = build(g, Classification.all_keep(g))
        fwd = [t for t in sched.tasks.values() if t.kind is TaskKind.FWD]
        assert len(fwd) == len(g)

    def test_input_load_on_h2d(self, g):
        sched = build(g, Classification.all_keep(g))
        assert sched.tasks["F0"].stream is StreamName.H2D

    def test_keep_plan_has_no_copies(self, g):
        sched = build(g, Classification.all_keep(g))
        kinds = {t.kind for t in sched.tasks.values()}
        assert TaskKind.SWAP_OUT not in kinds
        assert TaskKind.SWAP_IN not in kinds
        assert TaskKind.RECOMPUTE not in kinds

    def test_swap_plan_has_swap_pairs(self, g):
        sched = build(g, Classification.all_swap(g))
        n_out = sum(1 for t in sched.tasks.values() if t.kind is TaskKind.SWAP_OUT)
        n_in = sum(1 for t in sched.tasks.values() if t.kind is TaskKind.SWAP_IN)
        assert n_out == len(g.classifiable_maps())
        assert n_in == n_out

    def test_swap_out_waits_for_forward_consumers(self, g):
        sched = build(g, Classification.all_swap(g))
        bn1 = g.by_name("bn1").index
        so = sched.tasks[f"SO{bn1}"]
        for k in g.consumers[bn1]:
            assert f"F{k}" in so.deps

    def test_workspace_becomes_scratch(self, g):
        sched = build(g, Classification.all_keep(g))
        conv1 = g.by_name("conv1").index
        assert sched.tasks[f"F{conv1}"].scratch_bytes == g[conv1].op.workspace_bytes

    def test_params_preallocated(self, g):
        sched = build(g, Classification.all_keep(g))
        assert sched.buffers["params"].alloc_by is None
        assert sched.buffers["pgrads"].nbytes == g.total_param_bytes


class TestBackwardStructure:
    def test_one_bwd_task_per_backward_layer(self, g):
        sched = build(g, Classification.all_keep(g))
        bwd = [t for t in sched.tasks.values() if t.kind is TaskKind.BWD]
        assert len(bwd) == sum(1 for l in g if l.op.has_backward)

    def test_backward_order_reversed(self, g):
        sched = build(g, Classification.all_keep(g))
        order = [t for t in sched.queues[StreamName.COMPUTE]
                 if t.startswith("B")]
        layers = [int(t[1:]) for t in order]
        assert layers == sorted(layers, reverse=True)

    def test_gradient_flow_deps(self, g):
        sched = build(g, Classification.all_keep(g))
        conv2 = g.by_name("conv2").index
        b = sched.tasks[f"B{conv2}"]
        for k in g.consumers[conv2]:
            assert f"B{k}" in b.deps

    def test_update_task_last(self, g):
        sched = build(g, Classification.all_keep(g))
        assert sched.queues[StreamName.COMPUTE][-1] == "UPD"

    def test_update_optional(self, g):
        sched = build(g, Classification.all_keep(g), include_update=False)
        assert "UPD" not in sched.tasks

    def test_gradient_buffers_freed_by_reader(self, g):
        sched = build(g, Classification.all_keep(g))
        conv2 = g.by_name("conv2").index
        gbuf = sched.buffers[f"gr{conv2}"]
        assert f"B{conv2}" in gbuf.free_after


class TestSwapLifetimes:
    def test_swap_creates_two_instances(self, g):
        sched = build(g, Classification.all_swap(g))
        conv2 = g.by_name("conv2").index
        assert f"fm{conv2}@f" in sched.buffers
        assert f"fm{conv2}@b" in sched.buffers
        assert sched.buffers[f"fm{conv2}@host"].host

    def test_swap_in_depends_on_swap_out(self, g):
        sched = build(g, Classification.all_swap(g))
        conv2 = g.by_name("conv2").index
        assert f"SO{conv2}" in sched.tasks[f"SI{conv2}"].deps

    def test_backward_instance_freed_after_last_reader(self, g):
        sched = build(g, Classification.all_swap(g))
        bn1 = g.by_name("bn1").index
        inst = sched.buffers[f"fm{bn1}@b"]
        readers = {t for t in inst.free_after if t.startswith(("B", "R"))}
        assert readers  # some backward task reads it


class TestRecompute:
    def test_recompute_task_created(self):
        g = linear_chain(4, batch=2, channels=4, image=8)
        cls = Classification.all_recompute(g)
        sched = build(g, cls)
        recomputes = [t for t in sched.tasks.values()
                      if t.kind is TaskKind.RECOMPUTE]
        assert recomputes

    def test_recursive_chain(self):
        # chain: recompute of layer k requires recomputing its predecessors
        g = linear_chain(5, batch=2, channels=4, image=8)
        cls = Classification.all_recompute(g)
        sched = build(g, cls)
        order = sched.queues[StreamName.COMPUTE]
        # recompute of layer i must appear before any backward that reads it
        for i, tid in enumerate(order):
            if tid.startswith("R"):
                layer = int(tid[1:])
                readers = [
                    j for j, t2 in enumerate(order)
                    if t2.startswith("B") and f"fm{layer}@r" in sched.tasks[t2].reads
                ]
                assert all(i < j for j in readers)

    def test_recompute_duration_equals_forward(self):
        g = linear_chain(4, batch=2, channels=4, image=8)
        sched = build(g, Classification.all_recompute(g))
        for tid, t in sched.tasks.items():
            if t.kind is TaskKind.RECOMPUTE:
                assert t.duration == sched.tasks[f"F{t.layer}"].duration

    def test_implicit_recompute_of_unclassified_pred(self, g):
        # bn2's output has no backward users; when the residual add is
        # recomputed, bn2 must be implicitly recomputed as its input
        res = g.by_name("res").index
        cls = Classification.all_keep(g).with_class(res, MapClass.RECOMPUTE)
        sched = build(g, cls)
        bn2 = g.by_name("bn2").index
        assert f"R{bn2}" in sched.tasks
        assert f"R{res}" in sched.tasks


class TestPolicies:
    def test_naive_swap_ins_have_start_deps(self, g):
        sched = build(g, Classification.all_swap(g), SwapInPolicy.NAIVE)
        sis = [t for t in sched.tasks.values() if t.kind is TaskKind.SWAP_IN]
        assert all(t.start_deps for t in sis)

    def test_eager_swap_ins_have_headroom(self, g):
        sched = build(g, Classification.all_swap(g), SwapInPolicy.EAGER)
        sis = [t for t in sched.tasks.values() if t.kind is TaskKind.SWAP_IN]
        assert all(t.headroom > 0 for t in sis)
        assert all(not t.start_deps for t in sis)

    def test_superneurons_swap_ins_ungated(self, g):
        sched = build(g, Classification.all_swap(g), SwapInPolicy.SUPERNEURONS)
        sis = [t for t in sched.tasks.values() if t.kind is TaskKind.SWAP_IN]
        assert all(not t.memory_gated for t in sis)
        assert all(t.alloc_on_ready for t in sis)

    def test_superneurons_trigger_is_conv_backward(self, g):
        sched = build(g, Classification.all_swap(g), SwapInPolicy.SUPERNEURONS)
        from repro.graph.ops import OpKind
        for t in sched.tasks.values():
            if t.kind is TaskKind.SWAP_IN and t.start_deps:
                dep = next(iter(t.start_deps))
                if dep.startswith("B"):
                    layer = int(dep[1:])
                    # trigger layer is a conv unless none precedes the reader
                    assert g[layer].op.kind in (OpKind.CONV,) or True

    def test_explicit_headroom_respected(self, g):
        sched = build(g, Classification.all_swap(g), headroom=12345)
        sis = [t for t in sched.tasks.values() if t.kind is TaskKind.SWAP_IN]
        assert all(t.headroom == 12345 for t in sis)


class TestMeta:
    def test_io_annotations_present(self, g):
        sched = build(g, Classification.all_swap(g))
        io = sched.meta["io"]
        conv1 = g.by_name("conv1").index
        assert io[f"F{conv1}"]["out"] == f"fm{conv1}@f"
        assert io[f"B{conv1}"]["grad_out"] == f"gr{conv1}"

    def test_classification_counts_in_meta(self, g):
        sched = build(g, Classification.all_swap(g))
        counts = sched.meta["classification_counts"]
        assert counts["swap"] == len(g.classifiable_maps())


class TestH2DQueueOrdering:
    def test_swap_ins_ordered_by_first_need(self, g):
        """The H2D queue must match need order even when recompute chains
        request restores out of graph order (the fuzzer-found deadlock)."""
        sched = build(g, Classification.all_swap(g))
        io = sched.meta["io"]
        pos = {tid: n for n, tid in enumerate(sched.queues[StreamName.COMPUTE])}
        # first compute position reading each restored instance
        first: dict[str, int] = {}
        for tid in sched.queues[StreamName.COMPUTE]:
            for bid in sched.tasks[tid].reads:
                if bid.endswith("@b") and bid not in first:
                    first[bid] = pos[tid]
        needs = [
            first[io[tid]["dst"]]
            for tid in sched.queues[StreamName.H2D]
            if sched.tasks[tid].kind is TaskKind.SWAP_IN
        ]
        assert needs and needs == sorted(needs)
