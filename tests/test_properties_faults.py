"""Property tests for the fault-injection layer.

Random graphs × random fault seeds, four invariants:

1. any schedule that executes does so without use-after-free — the numeric
   backend's free-hook oracle turns one into a hard ``NumericError``;
2. a PoocH run under a noisy profile still classifies every feature map
   exactly once;
3. step 2 of the search only flips maps whose r(X) < 1;
4. injected duration noise changes *time*, never *data*: out-of-core weight
   gradients stay bit-identical to the in-core run.

Plus the headline acceptance property: with a fixed ``--fault-seed`` a
faulted pipeline run is bit-reproducible.

``FAULT_SEED`` in the environment shifts every derived seed; CI runs this
module over a pinned seed matrix.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.faults import FaultInjector, FaultSpec, FaultyDurations
from repro.hw import CostModel, X86_V100
from repro.models import poster_example, small_cnn
from repro.pooch import PoocH
from repro.runtime import Classification, MapClass
from repro.runtime.durations import CostModelDurations
from repro.runtime.numeric import verify_against_incore
from tests.conftest import tiny_machine
from tests.test_random_graphs import build_random_graph

#: CI pins a seed matrix through this env var; locally it defaults to 0
FAULT_SEED = int(os.environ.get("FAULT_SEED", "0"))

_MACHINE = tiny_machine(mem_mib=224, link_gbps=3.0)


def _random_classification(graph, picks):
    classes = {}
    maps = sorted(Classification.all_swap(graph).classes)
    for m, pick in zip(maps, picks):
        options = [MapClass.SWAP, MapClass.KEEP]
        if graph[m].op.recomputable:
            options.append(MapClass.RECOMPUTE)
        classes[m] = options[pick % len(options)]
    return Classification(classes)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    st.lists(st.integers(min_value=0, max_value=4), min_size=4, max_size=10),
    st.lists(st.integers(min_value=0, max_value=7), min_size=4, max_size=4),
    st.lists(st.integers(min_value=0, max_value=2), min_size=24, max_size=24),
    st.integers(min_value=0, max_value=999),
)
def test_noise_never_changes_data(layer_picks, branch_picks, class_picks,
                                  seed_offset):
    """Invariants 1 + 4: random branchy graph, random plan, random fault
    seed.  The out-of-core run executes under 10% duration noise through the
    numeric backend (free-hook armed), and its gradients must still be
    bit-identical to the clean in-core run — noise moves tasks in time, never
    data.  ``verify_against_incore`` raises ``NumericError`` on either a
    use-after-free or a single differing bit."""
    graph = build_random_graph(layer_picks, branch_picks)
    cls = _random_classification(graph, class_picks)
    injector = FaultInjector(FaultSpec(duration_noise=0.1),
                             seed=FAULT_SEED * 1000 + seed_offset)
    faulty = FaultyDurations(
        CostModelDurations(graph, CostModel(X86_V100)), injector
    )
    verify_against_incore(graph, cls, X86_V100, durations=faulty)


@pytest.mark.parametrize("seed", [FAULT_SEED, FAULT_SEED + 1, FAULT_SEED + 2])
@pytest.mark.parametrize("noise", [0.05, 0.10])
def test_noisy_profile_classification_invariants(seed, noise):
    """Invariants 2 + 3 under a perturbed profile: the classifier must still
    cover every classifiable feature map exactly once, and step 2 may only
    flip maps whose (first-round) r(X) ratio is below 1."""
    graph = poster_example()
    result = PoocH(
        _MACHINE, faults=FaultSpec(profile_noise=noise), fault_seed=seed
    ).optimize(graph)
    expected = set(Classification.all_swap(graph).classes)
    assert set(result.classification.classes) == expected
    for m in result.stats.flips_to_recompute:
        assert result.stats.r_values[m] < 1.0
    # the plan must execute on the real (noise-free) machine or visibly
    # degrade — never crash (acceptance criterion)
    robust = result.execute_resilient()
    assert robust.makespan > 0


@pytest.mark.parametrize("seed", [FAULT_SEED, FAULT_SEED + 17])
def test_faulted_run_bit_reproducible(seed):
    """Acceptance: same spec, same seed => bit-identical plan, makespan,
    retry count and fallback path across independent pipeline runs."""
    spec = "duration_noise=0.1,profile_noise=0.05,stall_prob=0.1"

    def once():
        result = PoocH(_MACHINE, faults=spec, fault_seed=seed).optimize(
            small_cnn(batch=64))
        robust = result.execute_resilient()
        return (
            result.classification.key(),
            robust.makespan,
            robust.plan_used,
            robust.transfer_retries,
            robust.attempts,
            tuple((s.from_plan, s.to_plan) for s in robust.fallbacks),
        )

    assert once() == once()


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=999),
       st.sampled_from([0.02, 0.05, 0.10]))
def test_pipeline_survives_noise(seed_offset, noise):
    """Acceptance: under <=10% seeded noise (profile + duration + stalls)
    the pipeline either executes its plan or degrades along the declared
    fallback chain — never an unhandled exception."""
    spec = FaultSpec(duration_noise=noise, profile_noise=noise,
                     stall_prob=noise / 2)
    injector = FaultInjector(spec, seed=FAULT_SEED * 1000 + seed_offset)
    result = PoocH(_MACHINE, faults=injector).optimize(small_cnn(batch=64))
    robust = result.execute_resilient()
    assert robust.plan_used in ("chosen-plan", "swap-all", "recompute-all")
    assert robust.makespan > 0
    if robust.degraded:
        # every degradation step is a declared chain link, in order
        names = [s.to_plan for s in robust.fallbacks]
        assert names == ["swap-all", "recompute-all"][: len(names)]
