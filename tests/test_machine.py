"""Machine specs (the paper's Tables 1/2) and derived machines."""

import dataclasses

import pytest

from repro.common.units import GB, GiB
from repro.hw import MachineSpec, POWER9_V100, X86_V100, multi_gpu, scaled_machine


class TestPaperMachines:
    def test_x86_matches_table1(self):
        m = X86_V100
        assert m.gpu == "NVIDIA Tesla V100"
        assert m.gpu_mem_capacity == 16 * GiB
        assert m.cpu == "Intel Xeon Gold 6140"
        assert m.cpu_mem_capacity == 192 * GB
        assert m.h2d_bandwidth == 16 * GB
        assert m.interconnect == "PCIe gen3 x16"

    def test_power9_matches_table2(self):
        m = POWER9_V100
        assert m.cpu == "IBM POWER9"
        assert m.cpu_mem_capacity == 1000 * GB
        assert m.h2d_bandwidth == 75 * GB
        assert "NVLink" in m.interconnect

    def test_nvlink_more_than_4x_pcie(self):
        # "NVLink2.0, which is more than four times faster than PCI-Express"
        assert POWER9_V100.h2d_bandwidth > 4 * X86_V100.h2d_bandwidth

    def test_usable_memory_below_capacity(self):
        assert 0 < X86_V100.usable_gpu_memory < X86_V100.gpu_mem_capacity

    def test_environment_table_rows(self):
        rows = dict(X86_V100.environment_table())
        assert rows["GPU memory capacity"] == "16 GB"
        assert rows["CPU-GPU bandwidth"] == "16 GB/sec"
        assert len(rows) == 9

    def test_environment_table_asymmetric_bandwidths(self):
        # a machine whose H2D and D2H rates differ must report both; the
        # single "CPU-GPU bandwidth" row would silently hide the slower one
        m = dataclasses.replace(X86_V100, d2h_bandwidth=12 * GB)
        rows = dict(m.environment_table())
        assert "CPU-GPU bandwidth" not in rows
        assert rows["CPU-GPU bandwidth (H2D)"] == "16 GB/sec"
        assert rows["CPU-GPU bandwidth (D2H)"] == "12 GB/sec"

    def test_frozen(self):
        with pytest.raises(AttributeError):
            X86_V100.gpu_mem_capacity = 1


class TestScaledMachine:
    def test_mem_scale(self):
        m = scaled_machine(X86_V100, mem_scale=0.5)
        assert m.gpu_mem_capacity == 8 * GiB

    def test_link_scale(self):
        m = scaled_machine(X86_V100, link_scale=2.0)
        assert m.h2d_bandwidth == 32 * GB
        assert m.d2h_bandwidth == 32 * GB

    def test_name_default(self):
        assert scaled_machine(X86_V100).name == "x86_scaled"

    def test_original_untouched(self):
        scaled_machine(X86_V100, mem_scale=0.1)
        assert X86_V100.gpu_mem_capacity == 16 * GiB


class TestMultiGpu:
    def test_devices_and_name(self):
        m = multi_gpu(X86_V100, 4)
        assert m.devices == 4
        assert m.name == "x86x4"

    def test_single_device_is_unchanged(self):
        assert multi_gpu(X86_V100, 1) == X86_V100

    def test_host_swap_capacity_is_per_device_share(self):
        m = multi_gpu(X86_V100, 4)
        assert m.host_swap_capacity == X86_V100.cpu_mem_capacity // 4
        assert X86_V100.host_swap_capacity == X86_V100.cpu_mem_capacity

    def test_allreduce_bandwidth_defaults_to_link(self):
        m = multi_gpu(X86_V100, 2)
        assert m.effective_allreduce_bandwidth == min(
            m.h2d_bandwidth, m.d2h_bandwidth)
        fast = multi_gpu(X86_V100, 2, allreduce_bandwidth=100 * GB)
        assert fast.effective_allreduce_bandwidth == 100 * GB

    def test_environment_table_gains_device_rows(self):
        rows = dict(multi_gpu(X86_V100, 2).environment_table())
        assert rows["GPU"].startswith("2x ")
        assert "Gradient-exchange bandwidth" in rows
        assert "Host link" in rows

    def test_invalid_devices_rejected(self):
        with pytest.raises(ValueError):
            multi_gpu(X86_V100, 0)
