"""Machine specs (the paper's Tables 1/2) and derived machines."""

import pytest

from repro.common.units import GB, GiB
from repro.hw import MachineSpec, POWER9_V100, X86_V100, scaled_machine


class TestPaperMachines:
    def test_x86_matches_table1(self):
        m = X86_V100
        assert m.gpu == "NVIDIA Tesla V100"
        assert m.gpu_mem_capacity == 16 * GiB
        assert m.cpu == "Intel Xeon Gold 6140"
        assert m.cpu_mem_capacity == 192 * GB
        assert m.h2d_bandwidth == 16 * GB
        assert m.interconnect == "PCIe gen3 x16"

    def test_power9_matches_table2(self):
        m = POWER9_V100
        assert m.cpu == "IBM POWER9"
        assert m.cpu_mem_capacity == 1000 * GB
        assert m.h2d_bandwidth == 75 * GB
        assert "NVLink" in m.interconnect

    def test_nvlink_more_than_4x_pcie(self):
        # "NVLink2.0, which is more than four times faster than PCI-Express"
        assert POWER9_V100.h2d_bandwidth > 4 * X86_V100.h2d_bandwidth

    def test_usable_memory_below_capacity(self):
        assert 0 < X86_V100.usable_gpu_memory < X86_V100.gpu_mem_capacity

    def test_environment_table_rows(self):
        rows = dict(X86_V100.environment_table())
        assert rows["GPU memory capacity"] == "16 GB"
        assert rows["CPU-GPU bandwidth"] == "16 GB/sec"
        assert len(rows) == 9

    def test_frozen(self):
        with pytest.raises(AttributeError):
            X86_V100.gpu_mem_capacity = 1


class TestScaledMachine:
    def test_mem_scale(self):
        m = scaled_machine(X86_V100, mem_scale=0.5)
        assert m.gpu_mem_capacity == 8 * GiB

    def test_link_scale(self):
        m = scaled_machine(X86_V100, link_scale=2.0)
        assert m.h2d_bandwidth == 32 * GB
        assert m.d2h_bandwidth == 32 * GB

    def test_name_default(self):
        assert scaled_machine(X86_V100).name == "x86_scaled"

    def test_original_untouched(self):
        scaled_machine(X86_V100, mem_scale=0.1)
        assert X86_V100.gpu_mem_capacity == 16 * GiB
