"""Cost-model calibration against throughput anchors."""

import pytest

from repro.common.errors import ReproError
from repro.hw import X86_V100
from repro.hw.calibration import calibrate, measure_incore_ips
from repro.hw.costmodel import CostModel
from repro.models import resnet50


@pytest.fixture(scope="module")
def graph():
    return resnet50(64)  # fits in-core comfortably


class TestCalibrate:
    def test_hits_paper_anchor(self, graph):
        """The paper's 316 img/s in-core rate is reachable."""
        res = calibrate(graph, X86_V100, 64, target_ips=316.0)
        assert res.relative_error <= 0.01
        assert res.scale > 1.0  # the defaults are conservative

    def test_down_calibration(self, graph):
        res = calibrate(graph, X86_V100, 64, target_ips=150.0)
        assert res.relative_error <= 0.01
        assert res.scale < 1.0

    def test_unreachable_target_raises(self, graph):
        with pytest.raises(ReproError, match="unreachable"):
            calibrate(graph, X86_V100, 64, target_ips=1e7)

    def test_invalid_target(self, graph):
        with pytest.raises(ReproError):
            calibrate(graph, X86_V100, 64, target_ips=-5)

    def test_calibrated_model_usable_downstream(self, graph):
        """A calibrated model drops into profiling/execution like any other."""
        res = calibrate(graph, X86_V100, 64, target_ips=300.0, tolerance=0.02)
        ips = measure_incore_ips(graph, X86_V100, res.cost_model, 64)
        assert ips == pytest.approx(res.achieved_ips)

    def test_monotone_in_scale(self, graph):
        from repro.hw.calibration import _scaled_model
        slow = measure_incore_ips(graph, X86_V100, _scaled_model(X86_V100, 0.5), 64)
        fast = measure_incore_ips(graph, X86_V100, _scaled_model(X86_V100, 1.5), 64)
        assert fast > slow
