"""Operator factories: output shapes, FLOP/byte formulas, backward needs."""

import math

import pytest

from repro.common.errors import GraphError
from repro.graph import TensorSpec
from repro.graph import ops
from repro.graph.ops import OpKind


class TestConv:
    def test_output_shape_2d(self):
        op, out = ops.conv(TensorSpec((2, 3, 32, 32)), 8, ksize=3, pad=1)
        assert out.shape == (2, 8, 32, 32)

    def test_output_shape_strided(self):
        op, out = ops.conv(TensorSpec((2, 3, 224, 224)), 64, ksize=7, stride=2, pad=3)
        assert out.shape == (2, 64, 112, 112)

    def test_output_shape_3d(self):
        op, out = ops.conv(TensorSpec((1, 3, 16, 32, 32)), 8, ksize=3,
                           stride=(1, 2, 2), pad=1)
        assert out.shape == (1, 8, 16, 16, 16)

    def test_flops_formula(self):
        op, out = ops.conv(TensorSpec((2, 4, 8, 8)), 16, ksize=3, pad=1)
        expected = 2 * out.numel * 4 * 9
        assert op.fwd_flops == expected
        assert op.bwd_flops == 2 * expected

    def test_grouped_flops_reduced(self):
        full, _ = ops.conv(TensorSpec((2, 8, 8, 8)), 16, ksize=3, pad=1)
        grouped, _ = ops.conv(TensorSpec((2, 8, 8, 8)), 16, ksize=3, pad=1, groups=4)
        assert grouped.fwd_flops == full.fwd_flops / 4

    def test_param_bytes(self):
        op, _ = ops.conv(TensorSpec((2, 3, 8, 8)), 8, ksize=3, bias=True)
        assert op.param_bytes == (8 * 3 * 9 + 8) * 4
        op_nb, _ = ops.conv(TensorSpec((2, 3, 8, 8)), 8, ksize=3, bias=False)
        assert op_nb.param_bytes == 8 * 3 * 9 * 4

    def test_backward_needs_input_only(self):
        op, _ = ops.conv(TensorSpec((2, 3, 8, 8)), 8, ksize=3)
        assert op.bwd_needs_input and not op.bwd_needs_output

    def test_fused_relu_needs_output(self):
        op, _ = ops.conv(TensorSpec((2, 3, 8, 8)), 8, ksize=3, activation="relu")
        assert op.bwd_needs_output
        assert op.fused_activation == "relu"

    def test_invalid_geometry(self):
        with pytest.raises(GraphError):
            ops.conv(TensorSpec((2, 3, 4, 4)), 8, ksize=7)

    def test_groups_must_divide(self):
        with pytest.raises(GraphError):
            ops.conv(TensorSpec((2, 3, 8, 8)), 8, ksize=1, groups=2)

    def test_spatial_rank_checked(self):
        with pytest.raises(GraphError):
            ops.conv(TensorSpec((2, 3, 8)), 8, ksize=1)

    def test_compute_bound(self):
        op, _ = ops.conv(TensorSpec((2, 3, 8, 8)), 8, ksize=3)
        assert op.compute_bound
        assert op.recomputable


class TestLinear:
    def test_flattens_input(self):
        op, out = ops.linear(TensorSpec((4, 8, 2, 2)), 10)
        assert out.shape == (4, 10)
        assert op.fwd_flops == 2 * 4 * 32 * 10

    def test_param_bytes(self):
        op, _ = ops.linear(TensorSpec((4, 32)), 10)
        assert op.param_bytes == (32 * 10 + 10) * 4


class TestBatchnorm:
    def test_shape_preserved(self):
        op, out = ops.batchnorm(TensorSpec((4, 8, 4, 4)))
        assert out.shape == (4, 8, 4, 4)

    def test_bandwidth_bound(self):
        op, _ = ops.batchnorm(TensorSpec((4, 8, 4, 4)))
        assert not op.compute_bound
        assert op.bwd_needs_input
        assert op.fwd_bytes == 4 * 4 * 8 * 16 * 4

    def test_param_bytes_per_channel(self):
        op, _ = ops.batchnorm(TensorSpec((4, 8, 4, 4)))
        assert op.param_bytes == 4 * 8 * 4


class TestRelu:
    def test_needs_output_only(self):
        op, out = ops.relu(TensorSpec((4, 8)))
        assert op.bwd_needs_output and not op.bwd_needs_input
        assert out.shape == (4, 8)


class TestPool:
    def test_max_shape(self):
        op, out = ops.pool(TensorSpec((2, 4, 8, 8)), ksize=2)
        assert out.shape == (2, 4, 4, 4)
        assert op.kind is OpKind.POOL_MAX

    def test_max_needs_both(self):
        op, _ = ops.pool(TensorSpec((2, 4, 8, 8)), ksize=2)
        assert op.bwd_needs_input and op.bwd_needs_output

    def test_avg_needs_neither(self):
        op, _ = ops.pool(TensorSpec((2, 4, 8, 8)), ksize=2, mode="avg")
        assert not op.bwd_needs_input and not op.bwd_needs_output

    def test_default_stride_is_ksize(self):
        _, out = ops.pool(TensorSpec((2, 4, 9, 9)), ksize=3)
        assert out.shape == (2, 4, 3, 3)

    def test_invalid_mode(self):
        with pytest.raises(GraphError):
            ops.pool(TensorSpec((2, 4, 8, 8)), ksize=2, mode="l2")

    def test_3d_pool(self):
        _, out = ops.pool(TensorSpec((1, 4, 8, 8, 8)), ksize=2)
        assert out.shape == (1, 4, 4, 4, 4)


class TestGlobalAvgPool:
    def test_collapses_spatial(self):
        _, out = ops.global_avg_pool(TensorSpec((2, 16, 7, 7)))
        assert out.shape == (2, 16)


class TestAddConcat:
    def test_add_shape(self):
        s = TensorSpec((2, 4, 4, 4))
        op, out = ops.add([s, s])
        assert out.shape == s.shape
        assert not op.bwd_needs_input

    def test_add_mismatch(self):
        with pytest.raises(GraphError):
            ops.add([TensorSpec((2, 4)), TensorSpec((2, 5))])

    def test_add_needs_two(self):
        with pytest.raises(GraphError):
            ops.add([TensorSpec((2, 4))])

    def test_concat_axis(self):
        a, b = TensorSpec((2, 4, 4, 4)), TensorSpec((2, 6, 4, 4))
        _, out = ops.concat([a, b], axis=1)
        assert out.shape == (2, 10, 4, 4)

    def test_concat_non_axis_mismatch(self):
        with pytest.raises(GraphError):
            ops.concat([TensorSpec((2, 4, 4, 4)), TensorSpec((2, 4, 5, 4))])


class TestDropoutLrnLoss:
    def test_dropout_not_recomputable(self):
        op, _ = ops.dropout(TensorSpec((4, 8)))
        assert not op.recomputable
        assert op.bwd_needs_output

    def test_input_not_recomputable(self):
        op, _ = ops.input_op(TensorSpec((4, 8)))
        assert not op.recomputable
        assert not op.has_backward

    def test_lrn_needs_both(self):
        op, out = ops.lrn(TensorSpec((2, 8, 4, 4)))
        assert op.bwd_needs_input and op.bwd_needs_output
        assert out.shape == (2, 8, 4, 4)

    def test_loss_shape(self):
        op, out = ops.softmax_cross_entropy(TensorSpec((16, 10)))
        assert out.shape == (16,)
        assert op.bwd_needs_input

    def test_loss_rejects_4d(self):
        with pytest.raises(GraphError):
            ops.softmax_cross_entropy(TensorSpec((2, 3, 4, 4)))
