"""PlanCache: persistent plans and simulation outcomes across runs.

Covers the signature keying, the JSON round trip (including ±inf outcome
times), PoocH's warm start, DynamicPoocH's cross-instance reuse, and the
``classifiable_maps`` provenance check that used to be stored but never
validated on load.
"""

from __future__ import annotations

import threading

import pytest

from repro.common.errors import ScheduleError
from repro.models import linear_chain, mlp, poster_example
from repro.pooch import PoocH, PoochConfig
from repro.pooch.dynamic import DynamicPoocH
from repro.runtime.plan import Classification, MapClass
from repro.runtime.plan_io import (
    PlanCache,
    graph_signature,
    key_from_str,
    key_to_str,
    machine_signature,
    plan_from_dict,
    plan_to_dict,
)
from tests.conftest import tiny_machine

CFG = PoochConfig(max_exact_li=4, step1_sim_budget=100)


@pytest.fixture
def machine():
    return tiny_machine(mem_mib=224)


class TestSignatures:
    def test_graph_signature_is_structural(self):
        assert graph_signature(poster_example()) == graph_signature(
            poster_example()
        )
        assert graph_signature(poster_example(batch=64)) != graph_signature(
            poster_example(batch=128)
        )
        assert graph_signature(poster_example()) != graph_signature(mlp())

    def test_machine_signature_reflects_capacity(self):
        assert machine_signature(tiny_machine(mem_mib=160)) != machine_signature(
            tiny_machine(mem_mib=224)
        )

    def test_key_str_roundtrip(self):
        key = ((0, "swap"), (3, "keep"), (7, "recompute"))
        assert key_from_str(key_to_str(key)) == key
        assert key_from_str(key_to_str(())) == ()


class TestPlanStore:
    def test_roundtrip(self, tmp_path, machine):
        g = poster_example()
        cls = Classification.all_swap(g).with_class(
            g.classifiable_maps()[2], MapClass.KEEP
        )
        cache = PlanCache(tmp_path)
        cache.store_plan(g, machine, CFG.signature(), cls, predicted_time=0.5)
        hit = cache.load_plan(g, machine, CFG.signature())
        assert hit is not None
        loaded, meta = hit
        assert loaded.key() == cls.key()
        assert meta["predicted_time_s"] == 0.5

    def test_miss_on_different_config(self, tmp_path, machine):
        g = poster_example()
        cache = PlanCache(tmp_path)
        cache.store_plan(g, machine, "cfg-a", Classification.all_swap(g))
        assert cache.load_plan(g, machine, "cfg-b") is None

    def test_miss_on_different_machine(self, tmp_path, machine):
        g = poster_example()
        cache = PlanCache(tmp_path)
        cache.store_plan(g, machine, "cfg", Classification.all_swap(g))
        assert cache.load_plan(g, tiny_machine(mem_mib=320), "cfg") is None

    def test_uncreatable_root_fails_loudly(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("")
        with pytest.raises(ScheduleError, match="plan cache"):
            PlanCache(blocker / "cache")

    def test_corrupt_file_is_a_miss(self, tmp_path, machine):
        g = poster_example()
        cache = PlanCache(tmp_path)
        path = cache.store_plan(g, machine, "cfg", Classification.all_swap(g))
        path.write_text("{not json")
        assert cache.load_plan(g, machine, "cfg") is None


class TestOutcomeStore:
    def test_merge_and_load(self, tmp_path, machine):
        g = poster_example()
        cache = PlanCache(tmp_path)
        entries = {
            ((0, "swap"), (1, "keep")): {
                "feasible": True, "time": 0.25, "peak_memory": 123,
                "oom_context": "",
            },
            ((0, "keep"), (1, "keep")): {
                "feasible": False, "time": float("inf"), "peak_memory": 0,
                "oom_context": "F1",
            },
        }
        assert cache.merge_outcomes(g, machine, "sig", entries) == 2
        loaded = cache.load_outcomes(g, machine, "sig")
        assert loaded == entries  # floats (incl. inf) survive JSON exactly

    def test_merge_is_a_union(self, tmp_path, machine):
        g = poster_example()
        cache = PlanCache(tmp_path)
        one = {((0, "swap"),): {"feasible": True, "time": 1.0,
                                "peak_memory": 1, "oom_context": ""}}
        two = {((0, "keep"),): {"feasible": True, "time": 2.0,
                                "peak_memory": 2, "oom_context": ""}}
        cache.merge_outcomes(g, machine, "sig", one)
        assert cache.merge_outcomes(g, machine, "sig", two) == 2
        assert len(cache.load_outcomes(g, machine, "sig")) == 2

    def test_signature_scoping(self, tmp_path, machine):
        g = poster_example()
        cache = PlanCache(tmp_path)
        entry = {((0, "swap"),): {"feasible": True, "time": 1.0,
                                  "peak_memory": 1, "oom_context": ""}}
        cache.merge_outcomes(g, machine, "profile-a", entry)
        assert cache.load_outcomes(g, machine, "profile-b") == {}


class TestPoochWarmStart:
    def test_second_optimize_hits_the_plan_cache(self, tmp_path, machine):
        g = poster_example()
        cold = PoocH(machine, CFG, plan_cache=tmp_path).optimize(g)
        assert not cold.stats.plan_cache_hit
        warm = PoocH(machine, CFG, plan_cache=tmp_path).optimize(g)
        assert warm.stats.plan_cache_hit
        assert warm.classification.key() == cold.classification.key()
        assert warm.predicted.time == cold.predicted.time
        assert warm.stats.sims_step1 == 0 and warm.stats.sims_step2 == 0
        assert "(from plan cache)" in warm.summary()

    def test_outcomes_warm_start_skips_all_simulations(self, tmp_path, machine):
        # drop the plan but keep the outcomes: the re-search replays
        # entirely from the cache and lands on the same plan for free
        g = poster_example()
        cache = PlanCache(tmp_path)
        cold = PoocH(machine, CFG, plan_cache=cache).optimize(g)
        cache.plan_path(g, machine, CFG.signature()).unlink()
        redo = PoocH(machine, CFG, plan_cache=cache).optimize(g)
        assert not redo.stats.plan_cache_hit
        assert redo.classification.key() == cold.classification.key()
        assert redo.stats.sims_step1 == 0 and redo.stats.sims_step2 == 0

    def test_different_config_searches_but_shares_outcomes(
        self, tmp_path, machine
    ):
        from dataclasses import replace

        g = poster_example()
        PoocH(machine, CFG, plan_cache=tmp_path).optimize(g)
        other = replace(CFG, step1_sim_budget=150)
        redo = PoocH(machine, other, plan_cache=tmp_path).optimize(g)
        assert not redo.stats.plan_cache_hit  # plan keyed by config
        # but the shared outcome store still serves the overlapping sims
        assert redo.stats.sims_step1 == 0

    def test_path_and_plancache_arguments_equivalent(self, tmp_path, machine):
        p = PoocH(machine, CFG, plan_cache=str(tmp_path))
        assert isinstance(p.plan_cache, PlanCache)


class TestDynamicPoochCache:
    def test_plans_persist_across_instances(self, tmp_path, machine):
        import repro.pooch.dynamic as dyn

        def build(batch):
            return linear_chain(6, batch=batch, channels=32, image=64)

        cfg = PoochConfig(max_exact_li=3, step1_sim_budget=120)
        first = DynamicPoocH(machine, build, cfg, plan_cache=tmp_path)
        first.run_stream([16, 32])
        plans = {s: first._plans[s].key() for s in (16, 32)}

        # a fresh instance (fresh process, conceptually) must reuse the
        # cached plans without ever invoking the classifier
        second = DynamicPoocH(machine, build, cfg, plan_cache=tmp_path)

        class Boom:
            def __init__(self, *a, **kw):
                raise AssertionError("search ran despite a cached plan")

        real = dyn.PoochClassifier
        dyn.PoochClassifier = Boom
        try:
            second.run_stream([16, 32])
        finally:
            dyn.PoochClassifier = real
        assert {s: second._plans[s].key() for s in (16, 32)} == plans


class TestSignatureMemoization:
    def test_graph_signature_memoized_on_instance(self):
        g = poster_example()
        assert "_graph_signature" not in g.__dict__
        sig = graph_signature(g)
        assert g.__dict__["_graph_signature"] == sig
        assert graph_signature(g) == sig  # served from the memo

    def test_validate_drops_the_memo(self):
        g = poster_example()
        sig = graph_signature(g)
        g.validate()  # the sanctioned re-check after mutation
        assert "_graph_signature" not in g.__dict__
        assert graph_signature(g) == sig  # recomputed, structurally equal

    def test_memo_does_not_leak_across_instances(self):
        assert graph_signature(poster_example(batch=64)) != graph_signature(
            poster_example(batch=128)
        )

    def test_machine_signature_cached_per_spec(self):
        machine_signature.cache_clear()
        m = tiny_machine(mem_mib=192)
        before = machine_signature.cache_info().hits
        machine_signature(m)
        machine_signature(m)
        assert machine_signature.cache_info().hits == before + 1


class TestAtomicWrites:
    def test_no_temp_files_left_behind(self, tmp_path, machine):
        g = poster_example()
        cache = PlanCache(tmp_path)
        cache.store_plan(g, machine, "cfg", Classification.all_swap(g))
        cache.merge_outcomes(g, machine, "sig", {
            ((0, "swap"),): {"feasible": True, "time": 1.0,
                             "peak_memory": 1, "oom_context": ""},
        })
        leftovers = [p for p in tmp_path.rglob("*") if p.suffix == ".tmp"]
        assert leftovers == []

    def test_concurrent_store_load_never_sees_a_torn_plan(
        self, tmp_path, machine
    ):
        # regression: store_plan used a plain write_text, so a reader (a
        # second optimize process, or another serve worker sharing the
        # directory) could observe a JSON prefix mid-write and fail — or
        # worse, a corrupt-but-parseable document
        g = poster_example()
        cache = PlanCache(tmp_path)
        plans = [
            Classification.all_swap(g),
            Classification.all_swap(g).with_class(
                g.classifiable_maps()[0], MapClass.KEEP
            ),
        ]
        valid_keys = {c.key() for c in plans}
        stop = threading.Event()
        errors: list[BaseException] = []

        def writer() -> None:
            i = 0
            try:
                while not stop.is_set():
                    cache.store_plan(g, machine, "cfg", plans[i % 2])
                    i += 1
            except BaseException as e:  # noqa: BLE001 - surfaced below
                errors.append(e)

        def reader() -> None:
            # a fresh PlanCache per reader: no shared LRU, every load is a
            # real file read racing the writer
            mine = PlanCache(tmp_path)
            try:
                for _ in range(300):
                    hit = mine.load_plan(g, machine, "cfg")
                    if hit is not None:
                        assert hit[0].key() in valid_keys
            except BaseException as e:  # noqa: BLE001 - surfaced below
                errors.append(e)

        readers = [threading.Thread(target=reader) for _ in range(3)]
        w = threading.Thread(target=writer)
        w.start()
        for t in readers:
            t.start()
        for t in readers:
            t.join()
        stop.set()
        w.join()
        assert errors == []
        assert not [p for p in tmp_path.rglob("*") if p.suffix == ".tmp"]


class TestInMemoryLru:
    def test_plan_hits_skip_the_disk_after_first_load(self, tmp_path, machine):
        g = poster_example()
        cache = PlanCache(tmp_path, lru_capacity=8)
        cache.store_plan(g, machine, "cfg", Classification.all_swap(g))
        # store writes through, so the very first load is already memoized
        first = cache.load_plan(g, machine, "cfg")
        assert first is not None
        assert cache.lru_hits == 1 and cache.disk_hits == 0
        # and the memoized Classification is shared by reference
        second = cache.load_plan(g, machine, "cfg")
        assert second[0] is first[0]
        assert cache.lru_hits == 2

    def test_cold_load_counts_a_disk_hit_then_memoizes(self, tmp_path, machine):
        g = poster_example()
        PlanCache(tmp_path).store_plan(g, machine, "cfg",
                                       Classification.all_swap(g))
        cache = PlanCache(tmp_path, lru_capacity=8)  # empty memo
        cache.load_plan(g, machine, "cfg")
        assert cache.disk_hits == 1 and cache.lru_hits == 0
        cache.load_plan(g, machine, "cfg")
        assert cache.disk_hits == 1 and cache.lru_hits == 1

    def test_miss_counted(self, tmp_path, machine):
        cache = PlanCache(tmp_path, lru_capacity=8)
        assert cache.load_plan(poster_example(), machine, "cfg") is None
        assert cache.misses == 1

    def test_zero_capacity_disables_the_memo(self, tmp_path, machine):
        g = poster_example()
        cache = PlanCache(tmp_path)  # default: no LRU
        cache.store_plan(g, machine, "cfg", Classification.all_swap(g))
        cache.load_plan(g, machine, "cfg")
        cache.load_plan(g, machine, "cfg")
        assert cache.lru_hits == 0 and cache.disk_hits == 2

    def test_memoized_outcomes_survive_caller_mutation(self, tmp_path, machine):
        g = poster_example()
        cache = PlanCache(tmp_path, lru_capacity=8)
        entry = {((0, "swap"),): {"feasible": True, "time": 1.0,
                                  "peak_memory": 1, "oom_context": ""}}
        cache.merge_outcomes(g, machine, "sig", entry)
        loaded = cache.load_outcomes(g, machine, "sig")
        loaded[((9, "keep"),)] = {"feasible": True, "time": 9.0,
                                  "peak_memory": 9, "oom_context": ""}
        # the caller's edit must not poison the memo (merge_outcomes mutates
        # the returned dict on every PoocH run)
        assert len(cache.load_outcomes(g, machine, "sig")) == 1

    def test_lru_eviction_is_bounded(self, tmp_path, machine):
        g = poster_example()
        cache = PlanCache(tmp_path, lru_capacity=2)
        for i in range(4):
            cache.store_plan(g, machine, f"cfg-{i}",
                             Classification.all_swap(g))
        assert len(cache._lru) == 2
        # evicted entries fall back to disk, not to a miss
        hit = cache.load_plan(g, machine, "cfg-0")
        assert hit is not None
        assert cache.disk_hits == 1


class TestClassifiableMapsValidation:
    def test_mismatch_rejected(self):
        # regression: the count was stored in every plan file but never
        # checked on load
        g = poster_example()
        data = plan_to_dict(Classification.all_swap(g), g)
        data["classifiable_maps"] += 3
        with pytest.raises(ScheduleError, match="classifiable maps"):
            plan_from_dict(data, g)

    def test_legacy_plan_without_count_still_loads(self):
        g = poster_example()
        data = plan_to_dict(Classification.all_swap(g), g)
        del data["classifiable_maps"]
        loaded = plan_from_dict(data, g)
        assert loaded.key() == Classification.all_swap(g).key()
