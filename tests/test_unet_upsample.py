"""Upsample op, U-Net model, and the skip-connection case study."""

import numpy as np
import pytest

from repro.common.errors import GraphError
from repro.graph import TensorSpec
from repro.graph import ops
from repro.graph.ops import OpKind
from repro.hw import X86_V100
from repro.models import unet
from repro.nn import functional as F
from repro.runtime import Classification, MapClass, execute
from tests.test_nn_gradients import check, numeric_grad


class TestUpsampleOp:
    def test_shape(self):
        op, out = ops.upsample(TensorSpec((2, 4, 8, 8)), scale=2)
        assert out.shape == (2, 4, 16, 16)
        assert op.kind is OpKind.UPSAMPLE

    def test_3d(self):
        _, out = ops.upsample(TensorSpec((1, 2, 4, 4, 4)), scale=2)
        assert out.shape == (1, 2, 8, 8, 8)

    def test_no_maps_needed_for_backward(self):
        op, _ = ops.upsample(TensorSpec((2, 4, 8, 8)))
        assert not op.bwd_needs_input and not op.bwd_needs_output

    def test_invalid_scale(self):
        with pytest.raises(GraphError):
            ops.upsample(TensorSpec((2, 4, 8, 8)), scale=1)

    def test_needs_spatial(self):
        with pytest.raises(GraphError):
            ops.upsample(TensorSpec((2, 4)))


class TestUpsampleKernels:
    def test_forward_values(self):
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        y = F.upsample_forward(x, 2)
        assert y.shape == (1, 1, 4, 4)
        assert y[0, 0, 0, 0] == y[0, 0, 1, 1] == 1.0
        assert y[0, 0, 3, 3] == 4.0

    def test_gradcheck(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((2, 3, 4, 4))
        y = F.upsample_forward(x, 2)
        dy = rng.standard_normal(y.shape)
        dx = F.upsample_backward(dy, 2)
        check(dx, numeric_grad(lambda v: F.upsample_forward(v, 2), x, dy))

    def test_gradcheck_3d(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((1, 2, 2, 3, 3))
        y = F.upsample_forward(x, 2)
        dy = rng.standard_normal(y.shape)
        dx = F.upsample_backward(dy, 2)
        check(dx, numeric_grad(lambda v: F.upsample_forward(v, 2), x, dy))


class TestUNet:
    def test_builds_and_validates(self):
        g = unet(2, image=64, base_channels=8, depth=3)
        g.validate()
        assert any(l.op.kind is OpKind.UPSAMPLE for l in g)
        assert any(l.op.kind is OpKind.CONCAT for l in g)

    def test_skip_lifetimes_are_long(self):
        """Encoder outputs are consumed far later (at the matching decoder
        stage) — the structural property that makes U-Net the swap
        showcase."""
        g = unet(2, image=64, base_channels=8, depth=3)
        enc0 = g.by_name("enc0_bn2").index
        span = g.last_forward_use(enc0) - enc0
        assert span > len(g) / 2  # consumed in the second half of the graph

    def test_trains_out_of_core(self):
        from repro.runtime.training import SGD, Trainer
        g = unet(2, image=16, base_channels=4, depth=2, num_classes=3)
        rep = Trainer(g, Classification.all_swap(g), X86_V100,
                      optimizer=SGD(lr=0.05)).run(10)
        assert rep.final_loss < rep.losses[0]

    def test_pooch_swaps_the_skips(self):
        """Case study: on a memory-tight machine PoocH should put encoder
        skip maps out of core (swap or recompute), not keep them all.

        Note the floor: a skip map cannot leave the GPU before its *last
        forward* consumer (the matching decoder stage) — the paper's §3.1
        swap-out rule — so the forward footprint never drops below the sum
        of live skips.  75 % of the in-core requirement is comfortably above
        that floor while still forcing out-of-core choices."""
        from repro.pooch import PoocH, PoochConfig
        from tests.conftest import tiny_machine
        from repro.common.units import MiB
        g = unet(16, image=128, base_channels=16, depth=3, num_classes=4)
        need = g.training_memory_bytes()
        m = tiny_machine(mem_mib=int(need / MiB * 0.75), link_gbps=4.0)
        res = PoocH(m, PoochConfig(max_exact_li=4, step1_sim_budget=200)
                    ).optimize(g)
        counts = res.classification.counts()
        assert counts[MapClass.SWAP] + counts[MapClass.RECOMPUTE] > 0
        gt = res.execute(m)
        assert gt.device_peak <= m.usable_gpu_memory
