"""Property-based tests over the core invariants.

The headline property mirrors the paper's architecture: for *any*
classification, PoocH's profile-driven timeline prediction must agree exactly
with ground-truth execution (same feasibility; identical makespan and peak
when feasible) as long as profiling is noise-free.  The whole classification
search is only sound because of this invariant.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.common.errors import OutOfMemoryError
from repro.gpusim import StreamName, TaskKind
from repro.models import linear_chain, poster_example
from repro.pooch import TimelinePredictor
from repro.runtime import (
    Classification,
    MapClass,
    SwapInPolicy,
    execute,
    run_profiling,
)
from tests.conftest import tiny_machine

# module-level fixtures computed once (hypothesis re-runs the test body)
_MACHINE = tiny_machine(mem_mib=224, link_gbps=3.0)
_GRAPH = poster_example()
_PROFILE = run_profiling(_GRAPH, _MACHINE)
_PREDICTOR = TimelinePredictor(_GRAPH, _PROFILE, _MACHINE)
_MAPS = sorted(Classification.all_swap(_GRAPH).classes)


def _classification(draw_classes: list[int]) -> Classification:
    classes = {}
    for m, pick in zip(_MAPS, draw_classes):
        options = [MapClass.SWAP, MapClass.KEEP]
        if _GRAPH[m].op.recomputable:
            options.append(MapClass.RECOMPUTE)
        classes[m] = options[pick % len(options)]
    return Classification(classes)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(st.integers(min_value=0, max_value=2),
                min_size=len(_MAPS), max_size=len(_MAPS)))
def test_predictor_agrees_with_ground_truth(picks):
    cls = _classification(picks)
    outcome = _PREDICTOR.predict(cls)
    try:
        gt = execute(_GRAPH, cls, _MACHINE)
    except OutOfMemoryError:
        assert not outcome.feasible
        return
    assert outcome.feasible
    assert outcome.time == pytest.approx(gt.makespan, rel=1e-12)
    assert outcome.peak_memory == gt.device_peak


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    st.lists(st.integers(min_value=0, max_value=2),
             min_size=len(_MAPS), max_size=len(_MAPS)),
    st.sampled_from(list(SwapInPolicy)),
)
def test_execution_invariants_for_any_plan(picks, policy):
    """Feasible runs respect capacity, keep streams serial, and execute every
    task exactly once."""
    cls = _classification(picks)
    try:
        r = execute(_GRAPH, cls, _MACHINE, policy=policy)
    except OutOfMemoryError:
        return
    assert r.device_peak <= _MACHINE.usable_gpu_memory
    # every forward and backward task ran exactly once
    fwd_layers = [x.layer for x in r.records_by_kind(TaskKind.FWD)]
    assert sorted(fwd_layers) == list(range(len(_GRAPH)))
    bwd_layers = [x.layer for x in r.records_by_kind(TaskKind.BWD)]
    assert len(bwd_layers) == len(set(bwd_layers))
    # streams are serial: records on one stream never overlap
    for stream in StreamName:
        recs = sorted(
            (x for x in r.records if x.stream is stream),
            key=lambda x: x.start,
        )
        for a, b in zip(recs, recs[1:]):
            assert a.end <= b.start + 1e-15
    # makespan is the last completion
    assert r.makespan == pytest.approx(max(x.end for x in r.records))


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    st.integers(min_value=3, max_value=8),
    st.integers(min_value=1, max_value=4),
    st.lists(st.integers(min_value=0, max_value=2), min_size=20, max_size=20),
)
def test_random_chains_schedule_and_run(n_layers, batch, picks):
    """Arbitrary chain graphs with arbitrary classifications build valid
    schedules and run on a machine big enough for their working set."""
    g = linear_chain(n_layers, batch=batch * 2, channels=8, image=16)
    maps = sorted(Classification.all_swap(g).classes)
    classes = {}
    for m, pick in zip(maps, picks):
        options = [MapClass.SWAP, MapClass.KEEP]
        if g[m].op.recomputable:
            options.append(MapClass.RECOMPUTE)
        classes[m] = options[pick % len(options)]
    cls = Classification(classes)
    from repro.hw import X86_V100
    r = execute(g, cls, X86_V100)
    assert r.makespan > 0


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=2),
                min_size=len(_MAPS), max_size=len(_MAPS)))
def test_memory_trace_balances(picks):
    """In any feasible run, the malloc/free trace never exceeds capacity and
    each buffer is freed at most once."""
    cls = _classification(picks)
    try:
        r = execute(_GRAPH, cls, _MACHINE)
    except OutOfMemoryError:
        return
    freed = set()
    for ev in r.device_trace:
        assert 0 <= ev.in_use_after <= _MACHINE.usable_gpu_memory
        if ev.kind == "free":
            assert ev.buffer not in freed
            freed.add(ev.buffer)
