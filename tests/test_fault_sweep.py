"""Monte-Carlo fault sweeps: vectorized rows == serial injector runs, bit-for-bit.

The seed sweep (``repro.faults.sweep``) rests on two facts this harness
checks directly:

* **duration-table parity**: :func:`seed_duration_matrix` row k must equal,
  float-for-float, the durations a schedule rebuilt under
  ``FaultyDurations(base, FaultInjector(spec, seed=k))`` carries — the
  keyed-RNG draws are computable up front;
* **row bit-identity**: a lockstep row replayed with its per-row duration
  table must match a serial ``FaultInjector`` + event-engine run with the
  same seed — makespan, per-task start/end times, pool high-water marks,
  and the OOM diagnosis when the seed's noise breaks the plan — zoo-wide.

Plus the fallback matrix: event-order-dependent specs (stalls, spurious
OOMs, host faults) and inexpressible drafts (NAIVE triggers) must take the
serial resilient path, never silently diverge — and the sweep's vectorized
and forced-serial arms must agree end to end.
"""

from __future__ import annotations

import os

import pytest

from repro.common.errors import FaultError, OutOfMemoryError
from repro.faults import (
    FaultInjector,
    FaultSpec,
    FaultyDurations,
    fault_seed_sweep,
    seed_duration_matrix,
    vectorizable,
)
from repro.gpusim import Engine
from repro.gpusim.vecengine import VectorEngine, VectorTables
from repro.hw import CostModel, X86_V100, scaled_machine
from repro.models import small_cnn
from repro.models.zoo import MODEL_ZOO
from repro.obs import MetricsRegistry, metrics
from repro.runtime.durations import CostModelDurations
from repro.runtime.plan import Classification, SwapInPolicy
from repro.runtime.schedule import ScheduleBuilder, ScheduleOptions, build_schedule
from tests.conftest import tiny_machine

#: CI pins a seed matrix through this env var; locally it defaults to 0
FAULT_SEED = int(os.environ.get("FAULT_SEED", "0"))

_EAGER = ScheduleOptions(policy=SwapInPolicy.EAGER)


def _vector_rows(graph, cls, machine, spec, seeds):
    """Compile the clean draft once, replay all seeds in one lockstep batch."""
    base = CostModelDurations(graph, CostModel(machine))
    tasks, queues, buffers = ScheduleBuilder(
        graph, cls, base, _EAGER, validate=False
    ).build_raw()
    host_cap = int(machine.cpu_mem_capacity * spec.host_capacity_factor)
    tables = VectorTables(tasks, queues, buffers, machine.usable_gpu_memory,
                          host_cap)
    matrix = seed_duration_matrix(tasks, tables.tids, spec, seeds)
    return VectorEngine(tables).run_batch(durations=matrix, record_times=True)


def _serial_run(graph, cls, machine, spec, seed):
    """The ground truth: rebuild the schedule under this seed's injector and
    replay it on the full event engine."""
    injector = FaultInjector(spec, seed=seed)
    durations = FaultyDurations(
        CostModelDurations(graph, CostModel(machine)), injector)
    schedule = build_schedule(graph, cls, durations, _EAGER)
    return Engine(
        schedule,
        device_capacity=machine.usable_gpu_memory,
        host_capacity=injector.host_capacity(machine.cpu_mem_capacity),
    ).run()


def assert_rows_match_serial(graph, cls, machine, spec, seeds):
    """Every vectorized row bit-identical to its serial counterpart —
    feasible-for-feasible (times included) and OOM-blame-for-OOM-blame."""
    rows = _vector_rows(graph, cls, machine, spec, seeds)
    for seed, row in zip(seeds, rows):
        try:
            want = _serial_run(graph, cls, machine, spec, seed)
        except OutOfMemoryError as e:
            assert isinstance(row.error, OutOfMemoryError), row.error
            assert row.error.context == e.context
            continue
        assert row.ok, row.error
        # exact equality throughout — never approx
        assert row.makespan == want.makespan
        assert row.device_peak == want.device_peak
        assert row.host_peak == want.host_peak
        assert len(row.starts) == len(want.records)
        for rec in want.records:
            assert row.starts[rec.tid] == rec.start
            assert row.ends[rec.tid] == rec.end


class TestSeedMatrixParity:
    """Matrix row k == the durations a per-seed FaultyDurations rebuild
    would stamp into the draft — per task, bit-exact."""

    SPEC = FaultSpec(duration_noise=0.08, bandwidth_factor=0.85)

    def _compare(self, spec, seeds=tuple(range(4))):
        graph = small_cnn()
        machine = tiny_machine(mem_mib=160)
        cls = Classification.all_swap(graph)
        base = CostModelDurations(graph, CostModel(machine))
        tasks, _, _ = ScheduleBuilder(
            graph, cls, base, _EAGER, validate=False).build_raw()
        tids = list(tasks)
        matrix = seed_duration_matrix(tasks, tids, spec, seeds)
        for r, seed in enumerate(seeds):
            injector = FaultInjector(spec, seed=seed)
            faulted = FaultyDurations(base, injector)
            want, _, _ = ScheduleBuilder(
                graph, cls, faulted, _EAGER, validate=False).build_raw()
            for i, tid in enumerate(tids):
                assert matrix[r, i] == want[tid].duration, (seed, tid)

    def test_noise_and_bandwidth(self):
        self._compare(self.SPEC)

    def test_inert_spec_is_identity(self):
        graph = small_cnn()
        machine = tiny_machine(mem_mib=160)
        base = CostModelDurations(graph, CostModel(machine))
        tasks, _, _ = ScheduleBuilder(
            graph, Classification.all_swap(graph), base, _EAGER,
            validate=False).build_raw()
        tids = list(tasks)
        matrix = seed_duration_matrix(tasks, tids, FaultSpec(), [0, 1])
        for i, tid in enumerate(tids):
            assert matrix[0, i] == tasks[tid].duration
            assert matrix[1, i] == tasks[tid].duration

    def test_recompute_shares_forward_draw(self):
        # R tasks must reuse the ("dur", "fwd", layer) key, like the provider
        graph = small_cnn()
        machine = tiny_machine(mem_mib=160)
        base = CostModelDurations(graph, CostModel(machine))
        cls = Classification.all_recompute(graph)
        tasks, _, _ = ScheduleBuilder(
            graph, cls, base, _EAGER, validate=False).build_raw()
        tids = list(tasks)
        matrix = seed_duration_matrix(tasks, tids, self.SPEC, [FAULT_SEED])
        index = {tid: i for i, tid in enumerate(tids)}
        injector = FaultInjector(self.SPEC, seed=FAULT_SEED)
        for tid in tids:
            if tid.startswith("R"):
                layer = tasks[tid].layer
                factor = injector.duration_factor("fwd", layer)
                assert (matrix[0, index[tid]]
                        == tasks[tid].duration * factor)


class TestZooSweepBitIdentity:
    """Satellite: every vectorized fault row bit-identical to a serial
    ``FaultInjector`` run with the same seed, across the whole zoo."""

    MACHINE = scaled_machine(X86_V100, mem_scale=0.25, name="x86_quarter")
    SPEC = FaultSpec(duration_noise=0.1, bandwidth_factor=0.9)

    @pytest.mark.parametrize("name", sorted(MODEL_ZOO))
    def test_zoo_row_identity(self, name):
        graph = MODEL_ZOO[name](batch=2)
        cls = Classification.all_swap(graph)
        assert_rows_match_serial(graph, cls, self.MACHINE, self.SPEC,
                                 [FAULT_SEED, FAULT_SEED + 1, FAULT_SEED + 2])

    def test_recompute_plan_identity(self):
        graph = small_cnn()
        cls = Classification.all_recompute(graph)
        assert_rows_match_serial(graph, cls, tiny_machine(mem_mib=160),
                                 self.SPEC, list(range(FAULT_SEED,
                                                       FAULT_SEED + 6)))

    def test_oom_rows_blame_the_same_task(self):
        # near-capacity + strong noise: some seeds re-time issues enough to
        # overflow the pool — the lockstep row must blame the same task the
        # serial engine does, seed for seed
        graph = small_cnn()
        cls = Classification.all_keep(graph)
        assert_rows_match_serial(
            graph, cls, tiny_machine(mem_mib=96),
            FaultSpec(duration_noise=0.3),
            list(range(FAULT_SEED, FAULT_SEED + 8)))

    def test_host_capacity_factor_is_static(self):
        graph = small_cnn()
        cls = Classification.all_swap(graph)
        assert_rows_match_serial(
            graph, cls, tiny_machine(mem_mib=160),
            FaultSpec(duration_noise=0.05, host_capacity_factor=0.5),
            [FAULT_SEED, FAULT_SEED + 1])


class TestSweepFallbackMatrix:
    """Event-order-dependent specs and inexpressible drafts must take the
    serial path; the sweep's two arms must agree wherever both run."""

    def _outcomes_agree(self, a, b):
        assert len(a) == len(b)
        for x, y in zip(a, b):
            assert x.seed == y.seed
            assert x.makespan == y.makespan
            assert x.plan_used == y.plan_used or x.plan_used == "chosen-plan"
            assert x.failed == y.failed

    def test_stall_and_oom_specs_are_not_vectorizable(self):
        assert vectorizable(FaultSpec(duration_noise=0.2,
                                      bandwidth_factor=0.5,
                                      host_capacity_factor=0.5,
                                      profile_noise=0.3))
        assert not vectorizable(FaultSpec(stall_prob=0.01))
        assert not vectorizable(FaultSpec(oom_prob=0.01))
        assert not vectorizable(FaultSpec(host_oom_prob=0.01))

    def test_stall_spec_rows_go_serial(self):
        graph = small_cnn()
        machine = tiny_machine(mem_mib=160)
        cls = Classification.all_swap(graph)
        outs = fault_seed_sweep(graph, cls, machine,
                                FaultSpec(stall_prob=0.2), range(3))
        assert all(not o.vectorized for o in outs)

    def test_naive_draft_falls_back_serially(self):
        # the clean draft itself is outside the lockstep family: every seed
        # must still produce an outcome via the serial path
        graph = small_cnn()
        machine = tiny_machine(mem_mib=160)
        cls = Classification.all_swap(graph)
        outs = fault_seed_sweep(
            graph, cls, machine, FaultSpec(duration_noise=0.05), range(3),
            options=ScheduleOptions(policy=SwapInPolicy.NAIVE))
        assert all(not o.vectorized for o in outs)
        assert all(o.ok for o in outs)

    def test_vectorized_arm_matches_serial_arm(self):
        graph = small_cnn()
        machine = tiny_machine(mem_mib=160)
        cls = Classification.all_swap(graph)
        spec = FaultSpec(duration_noise=0.1, bandwidth_factor=0.9)
        seeds = range(FAULT_SEED, FAULT_SEED + 8)
        vec = fault_seed_sweep(graph, cls, machine, spec, seeds)
        ser = fault_seed_sweep(graph, cls, machine, spec, seeds,
                               vectorize=False)
        assert any(o.vectorized for o in vec)
        assert all(not o.vectorized for o in ser)
        self._outcomes_agree(vec, ser)

    def test_oom_rows_replay_the_fallback_chain(self):
        # a vectorizable spec whose shrunken host pool breaks the chosen
        # plan: every lockstep row errors, falls back serially, and degrades
        # through the chain instead of failing — with the machine-readable
        # reason recorded
        graph = small_cnn()
        machine = tiny_machine(mem_mib=96)
        cls = Classification.all_swap(graph)
        clean = _serial_run(graph, cls, machine, FaultSpec(), 0)
        factor = clean.host_peak * 0.5 / machine.cpu_mem_capacity
        spec = FaultSpec(duration_noise=0.1, host_capacity_factor=factor)
        assert vectorizable(spec)
        outs = fault_seed_sweep(graph, cls, machine, spec,
                                range(FAULT_SEED, FAULT_SEED + 4))
        assert all(not o.vectorized for o in outs)
        for o in outs:
            assert o.ok and o.degraded and o.fallbacks >= 1
            assert o.oom
            assert o.plan_used == "recompute-all"

    def test_workers_fan_out_is_identity(self):
        graph = small_cnn()
        machine = tiny_machine(mem_mib=160)
        cls = Classification.all_swap(graph)
        spec = FaultSpec(stall_prob=0.2)
        seeds = range(FAULT_SEED, FAULT_SEED + 3)
        one = fault_seed_sweep(graph, cls, machine, spec, seeds, workers=1)
        two = fault_seed_sweep(graph, cls, machine, spec, seeds, workers=2)
        for a, b in zip(one, two):
            assert (a.seed, a.makespan, a.plan_used, a.transfer_retries,
                    a.attempts) == (b.seed, b.makespan, b.plan_used,
                                    b.transfer_retries, b.attempts)


class TestSweepMetrics:
    def test_row_split_counters(self):
        graph = small_cnn()
        machine = tiny_machine(mem_mib=160)
        cls = Classification.all_swap(graph)
        registry = MetricsRegistry()
        previous = metrics.set_active(registry)
        try:
            fault_seed_sweep(graph, cls, machine,
                             FaultSpec(duration_noise=0.05), range(4))
            fault_seed_sweep(graph, cls, machine,
                             FaultSpec(stall_prob=0.2), range(2))
        finally:
            metrics.set_active(previous)
        faults = registry.snapshot()["sections"]["faults"]
        assert faults["sweeps"] == 2
        assert faults["rows_vectorized"] == 4
        assert faults["rows_fallback"] == 2


class TestRobustnessSeedDistribution:
    def test_report_carries_percentiles_and_rates(self):
        from repro.analysis import robustness_report

        machine = tiny_machine(mem_mib=224)
        report = robustness_report(
            small_cnn(batch=64), machine,
            specs=[FaultSpec(duration_noise=0.1)],
            seed=FAULT_SEED, fault_seeds=8)
        assert report.fault_seeds == 8
        (row,) = report.rows
        assert row.fault_seeds == 8
        assert row.rows_vectorized + row.rows_fallback == 8
        assert row.rows_vectorized > 0
        assert row.p50 <= row.p95 <= row.p99
        assert row.makespan == row.p50
        assert row.throughput == pytest.approx(report.batch / row.p50)
        for rate in (row.oom_rate, row.fallback_rate, row.retry_rate):
            assert 0.0 <= rate <= 1.0
        text = report.render()
        assert "p95" in text and "8 fault seeds" in text

    def test_single_seed_degenerates_to_point_estimate(self):
        from repro.analysis import robustness_report

        machine = tiny_machine(mem_mib=224)
        report = robustness_report(
            small_cnn(batch=64), machine,
            specs=[FaultSpec(duration_noise=0.1)],
            seed=FAULT_SEED, fault_seeds=1)
        (row,) = report.rows
        assert row.p50 == row.p95 == row.p99 == row.makespan

    def test_rejects_bad_seed_count(self):
        from repro.analysis import robustness_report

        with pytest.raises(ValueError):
            robustness_report(small_cnn(), tiny_machine(), fault_seeds=0)


class TestParseDuplicateKeys:
    def test_duplicate_key_rejected(self):
        with pytest.raises(FaultError, match="duplicate.*duration_noise"):
            FaultSpec.parse("duration_noise=0.1,duration_noise=0.2")

    def test_duplicate_rejected_even_with_equal_values(self):
        with pytest.raises(FaultError, match="duplicate"):
            FaultSpec.parse("stall_prob=0.1,stall_prob=0.1")
