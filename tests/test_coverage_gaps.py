"""Edge cases not covered elsewhere: engine prealloc gating, builder
interactions, zoo completeness, misc error paths."""

import pytest

from repro.common.errors import GraphError, OutOfMemoryError
from repro.gpusim import (
    BufferSpec,
    Engine,
    Schedule,
    StreamName,
    Task,
    TaskKind,
)
from repro.hw import CostModel, X86_V100
from repro.models import build_model, linear_chain, small_cnn
from repro.runtime import (
    Classification,
    CostModelDurations,
    MapClass,
    ScheduleOptions,
    SwapInPolicy,
    build_schedule,
    execute,
)
from tests.test_engine import make_schedule, task


class TestEnginePreallocGated:
    def test_gated_prealloc_waits_for_room(self):
        """A *gated* alloc-on-ready task defers its reservation when memory
        is tight and reserves once frees happen."""
        bufs = [
            # occupied from before t=0, released when a completes
            BufferSpec("x", 768, alloc_by=None, free_after=frozenset({"a"})),
            BufferSpec("y", 768, alloc_by="b", free_after=frozenset({"b"})),
        ]
        sched = make_schedule(
            [task("a", StreamName.COMPUTE, 2.0),
             task("blocker", StreamName.H2D, 3.0),
             task("b", StreamName.H2D, 1.0, alloc_on_ready=True)],
            bufs,
        )
        eng = Engine(sched, 1024)
        eng.run()  # must not raise: reservation waits for a's free
        mallocs = [e for e in eng.device.trace if e.buffer == "y"]
        assert mallocs[0].time == pytest.approx(2.0)

    def test_prealloc_skipped_if_task_already_started(self):
        # alloc_on_ready with no start_deps: issue path allocates normally
        bufs = [BufferSpec("y", 256, alloc_by="b", free_after=frozenset({"b"}))]
        sched = make_schedule([task("b", StreamName.H2D, 1.0,
                                    alloc_on_ready=True)], bufs)
        r = Engine(sched, 1024).run()
        assert r.makespan == 1.0


class TestBuilderInteractions:
    def test_naive_policy_with_refetch(self):
        """Forward re-fetch swap-ins get naive triggers too, without
        deadlock."""
        from tests.test_forward_refetch import skip_net
        g = skip_net(batch=4, channels=8, image=16, middle=5)
        dur = CostModelDurations(g, CostModel(X86_V100))
        sched = build_schedule(
            g, Classification.all_swap(g), dur,
            ScheduleOptions(policy=SwapInPolicy.NAIVE, forward_refetch_gap=2),
        )
        refetches = [t for t in sched.tasks.values()
                     if "~f" in t.tid]
        assert refetches and all(t.start_deps for t in refetches)
        Engine(sched, X86_V100.usable_gpu_memory).run()

    def test_refetch_multiple_segments(self):
        """A map with three widely separated forward consumers gets two
        re-fetches."""
        from repro.graph import GraphBuilder
        b = GraphBuilder("multi_skip")
        x = b.input((4, 8, 16, 16))
        stem = b.conv(x, 8, ksize=3, pad=1, name="stem")
        h = stem
        for i in range(4):
            h = b.conv(h, 8, ksize=3, pad=1, name=f"m1_{i}")
        h = b.add([stem, h], name="join1")
        for i in range(4):
            h = b.conv(h, 8, ksize=3, pad=1, name=f"m2_{i}")
        h = b.concat([stem, h], name="join2")
        b.loss(b.linear(b.global_avg_pool(h), 3))
        g = b.build()
        dur = CostModelDurations(g, CostModel(X86_V100))
        sched = build_schedule(g, Classification.all_swap(g), dur,
                               ScheduleOptions(forward_refetch_gap=2))
        stem_idx = g.by_name("stem").index
        assert f"SI{stem_idx}~f1" in sched.tasks
        assert f"SI{stem_idx}~f2" in sched.tasks
        Engine(sched, X86_V100.usable_gpu_memory).run()

    def test_update_excluded_keeps_working(self):
        g = small_cnn()
        r = execute(g, Classification.all_swap(g), X86_V100,
                    options=ScheduleOptions(include_update=False))
        assert all(rec.kind is not TaskKind.UPDATE for rec in r.records)


class TestZooCompleteness:
    @pytest.mark.parametrize("name", ["unet", "densenet121"])
    def test_new_models_in_zoo(self, name):
        g = build_model(name, batch=1)
        g.validate()

    def test_all_zoo_models_schedule_in_core(self):
        from repro.models import MODEL_ZOO
        for name in MODEL_ZOO:
            g = build_model(name, batch=1)
            # building an in-core schedule exercises liveness for every op mix
            dur = CostModelDurations(g, CostModel(X86_V100))
            sched = build_schedule(g, Classification.all_keep(g), dur)
            sched.validate()


class TestDynamicStats:
    def test_totals(self):
        from repro.pooch.dynamic import DynamicStats
        s = DynamicStats(iteration_times=[1.0, 2.0])
        assert s.total_time == 3.0


class TestCalibrationIntegration:
    def test_calibrated_pooch_run(self):
        """End-to-end: calibrate to the paper's 316 img/s anchor, then run a
        PoocH optimization with the calibrated model."""
        from repro.hw.calibration import calibrate
        from repro.models import resnet50
        from repro.pooch import PoocH, PoochConfig
        from repro.runtime import images_per_second
        res = calibrate(resnet50(64), X86_V100, 64, target_ips=316.0,
                        tolerance=0.02)
        g = resnet50(256)
        result = PoocH(X86_V100, PoochConfig(max_exact_li=3,
                                             step1_sim_budget=120),
                       cost_model=res.cost_model).optimize(g)
        gt = result.execute(cost_model=res.cost_model)
        ips = images_per_second(gt, 256)
        # out-of-core throughput bounded by the calibrated in-core anchor
        assert 0.4 * 316 < ips <= 316 * 1.35


class TestMissingKeyDiagnostics:
    def test_nearest_keys_numeric_distance(self):
        from repro.common.errors import nearest_keys

        near = nearest_keys(7, {1: "a", 6: "b", 8: "c", 100: "d"}, limit=2)
        assert set(near) == {6, 8}

    def test_nearest_keys_string_similarity(self):
        from repro.common.errors import nearest_keys

        near = nearest_keys("fwd_3", ["fwd_1", "bwd_9", "update"])
        assert "fwd_1" in near

    def test_nearest_keys_empty_table(self):
        from repro.common.errors import nearest_keys

        assert nearest_keys(5, {}) == ()

    def test_missing_key_error_message_not_requoted(self):
        from repro.common.errors import MissingKeyError

        err = MissingKeyError("table has no key 3", key=3, table="t",
                              nearest=(2, 4))
        assert str(err) == "table has no key 3"
        assert isinstance(err, KeyError)
