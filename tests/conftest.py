"""Shared fixtures: small graphs, shrunken machines, fast search configs.

Real machine specs make every toy model fit in-core, which would leave the
out-of-core machinery untested; ``tiny_machine`` scales a V100-like spec down
so the toys genuinely exceed GPU memory.
"""

from __future__ import annotations

import pytest

from repro.common.units import GB, MiB
from repro.hw import CostModel, MachineSpec, POWER9_V100, X86_V100
from repro.models import linear_chain, mlp, poster_example, small_cnn
from repro.pooch import PoochConfig


def tiny_machine(
    mem_mib: int = 160,
    link_gbps: float = 16.0,
    name: str = "tiny",
    reserved_mib: int = 8,
) -> MachineSpec:
    """A V100-like machine with only ``mem_mib`` MiB of GPU memory, so toy
    graphs (tens-to-hundreds of MiB of feature maps) run out-of-core."""
    return MachineSpec(
        name=name,
        cpu="test-host",
        gpu_mem_capacity=mem_mib * MiB,
        gpu_mem_reserved=reserved_mib * MiB,
        cpu_mem_capacity=64 * GB,
        h2d_bandwidth=link_gbps * GB,
        d2h_bandwidth=link_gbps * GB,
        interconnect=f"test-link {link_gbps:g} GB/s",
    )


@pytest.fixture
def x86() -> MachineSpec:
    return X86_V100


@pytest.fixture
def power9() -> MachineSpec:
    return POWER9_V100


@pytest.fixture
def slow_link_machine() -> MachineSpec:
    """Small memory, slow interconnect: recompute should look attractive."""
    return tiny_machine(mem_mib=160, link_gbps=2.0, name="tiny-slow")


@pytest.fixture
def fast_link_machine() -> MachineSpec:
    """Small memory, fast interconnect: swapping should look attractive."""
    return tiny_machine(mem_mib=160, link_gbps=200.0, name="tiny-fast")


@pytest.fixture
def poster():
    return poster_example()


@pytest.fixture
def chain():
    return linear_chain(n_layers=6, batch=16, channels=32, image=32)


@pytest.fixture
def tiny_mlp():
    return mlp(batch=4, in_features=16, hidden=(16,), num_classes=4)


@pytest.fixture
def cnn():
    return small_cnn()


@pytest.fixture
def cnn_residual():
    return small_cnn(with_residual=True)


@pytest.fixture
def fast_config() -> PoochConfig:
    """Search config small enough for unit tests."""
    return PoochConfig(max_exact_li=4, step1_sim_budget=200)
