"""Best-fit block allocator: placement, coalescing, fragmentation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import OutOfMemoryError
from repro.common.units import KiB
from repro.gpusim import BlockMemoryPool
from repro.gpusim.allocator import round_size
from repro.hw import X86_V100
from repro.models import poster_example, small_cnn
from repro.runtime import Classification, execute


class TestPlacement:
    def test_simple_cycle(self):
        p = BlockMemoryPool(64 * KiB)
        p.malloc("a", 10 * KiB, 0.0)
        p.malloc("b", 10 * KiB, 0.0)
        assert p.in_use == 20 * KiB
        p.free("a", 1.0)
        p.free("b", 1.0)
        assert p.in_use == 0
        assert p.largest_free_block() == 64 * KiB  # fully coalesced

    def test_best_fit_prefers_smallest_block(self):
        p = BlockMemoryPool(100 * KiB)
        p.malloc("a", 10 * KiB, 0.0)
        p.malloc("b", 30 * KiB, 0.0)
        p.malloc("c", 10 * KiB, 0.0)
        p.free("a", 1.0)  # 10 KiB hole at offset 0
        # a 5 KiB request should land in the 10 KiB hole, not the tail
        p.malloc("d", 5 * KiB, 2.0)
        assert p._offsets["d"][0] == 0

    def test_fragmentation_failure(self):
        p = BlockMemoryPool(100 * KiB)
        p.malloc("a", 40 * KiB, 0.0)
        p.malloc("b", 20 * KiB, 0.0)
        p.malloc("c", 40 * KiB, 0.0)
        p.free("a", 1.0)
        p.free("c", 1.0)
        # 80 KiB free, but in two 40 KiB fragments
        assert p.free_bytes == 80 * KiB
        assert not p.can_fit(60 * KiB)
        with pytest.raises(OutOfMemoryError, match="FRAGMENTED"):
            p.malloc("big", 60 * KiB, 2.0)
        assert p.fragmentation() == pytest.approx(0.5)

    def test_coalesce_middle(self):
        p = BlockMemoryPool(90 * KiB)
        for i, name in enumerate("abc"):
            p.malloc(name, 30 * KiB, 0.0)
        p.free("a", 1.0)
        p.free("c", 1.0)
        p.free("b", 2.0)  # merges with both neighbours
        assert p.largest_free_block() == 90 * KiB
        assert len(p._free_blocks) == 1

    def test_best_fit_tie_breaks_to_lowest_offset(self):
        p = BlockMemoryPool(100 * KiB)
        for i, name in enumerate("abcde"):
            p.malloc(name, 20 * KiB, 0.0)
        p.free("b", 1.0)  # 20 KiB hole at 20 KiB
        p.free("d", 1.0)  # 20 KiB hole at 60 KiB — same size, higher offset
        p.malloc("x", 20 * KiB, 2.0)
        assert p._offsets["x"][0] == 20 * KiB

    def test_bucket_stats_reported(self):
        p = BlockMemoryPool(100 * KiB)
        p.malloc("a", 20 * KiB, 0.0)
        p.malloc("b", 20 * KiB, 0.0)
        p.malloc("c", 20 * KiB, 0.0)
        p.free("a", 1.0)
        p.free("c", 1.0)  # two free blocks: 20 KiB hole + 20+40 KiB tail
        s = p.stats()
        assert s["free_blocks"] == 2
        assert s["size_buckets"] == 2
        assert s["largest_bucket_blocks"] == 1
        p.free("b", 2.0)
        s = p.stats()
        assert s["free_blocks"] == s["size_buckets"] == 1
        assert s["largest_free_block_bytes"] == 100 * KiB

    def test_zero_size_request_holds_no_block(self):
        p = BlockMemoryPool(100 * KiB)
        p.malloc("a", 10 * KiB, 0.0)
        p.malloc("z", 0, 0.0)
        assert p.in_use == 10 * KiB
        before = list(p._free_blocks)
        p.free("z", 1.0)
        # the free list (and its invariants) are untouched by 0-byte buffers
        assert p._free_blocks == before
        p.malloc("b", 90 * KiB, 2.0)  # remaining space fully usable
        assert not p.can_fit(1)

    def test_can_fit_all_respects_blocks(self):
        p = BlockMemoryPool(100 * KiB)
        p.malloc("a", 40 * KiB, 0.0)
        p.malloc("b", 20 * KiB, 0.0)
        p.malloc("c", 40 * KiB, 0.0)
        p.free("a", 1.0)
        p.free("c", 1.0)
        assert p.can_fit_all([40 * KiB, 40 * KiB])
        assert p.can_fit_all([40 * KiB, 30 * KiB, 10 * KiB])  # 30+10 share one
        assert not p.can_fit_all([60 * KiB])
        assert not p.can_fit_all([40 * KiB, 35 * KiB, 10 * KiB])  # 10 left homeless


@settings(max_examples=120, deadline=None)
@given(
    st.lists(
        st.tuples(st.booleans(), st.integers(0, 7),
                  st.integers(1, 32 * KiB)),
        max_size=50,
    )
)
def test_block_pool_invariants(script):
    """Free blocks stay sorted, disjoint and coalesced; accounting matches
    the counting semantics for in_use/peak."""
    p = BlockMemoryPool(128 * KiB)
    live: dict[str, int] = {}
    for is_malloc, slot, size in script:
        bid = f"b{slot}"
        if is_malloc and bid not in live:
            try:
                p.malloc(bid, size, 0.0)
            except OutOfMemoryError:
                continue
            live[bid] = round_size(size)
        elif not is_malloc and bid in live:
            p.free(bid, 0.0)
            del live[bid]
        assert p.in_use == sum(live.values())
        # free blocks: sorted, non-overlapping, never adjacent (coalesced)
        blocks = p._free_blocks
        for (o1, s1), (o2, s2) in zip(blocks, blocks[1:]):
            assert o1 + s1 < o2
        assert sum(s for _, s in blocks) == p.capacity - p.in_use
        # the size-bucket index mirrors the free list exactly
        by_size: dict[int, list[int]] = {}
        for off, s in blocks:
            by_size.setdefault(s, []).append(off)
        assert p._size_keys == sorted(by_size)
        assert {s: sorted(offs) for s, offs in by_size.items()} == p._buckets


@settings(max_examples=120, deadline=None)
@given(
    st.lists(
        st.tuples(st.booleans(), st.integers(0, 7),
                  st.integers(1, 32 * KiB)),
        max_size=50,
    )
)
def test_bucketed_placement_matches_linear_scan(script):
    """The size-bucket fast path must pick the exact block a linear best-fit
    scan of the free list would: smallest size >= request, lowest offset
    among equal sizes."""
    p = BlockMemoryPool(128 * KiB)
    live: set[str] = set()
    for is_malloc, slot, size in script:
        bid = f"b{slot}"
        if is_malloc and bid not in live:
            ref = None
            for off, s in p._free_blocks:  # reference linear scan
                if s >= round_size(size) and (ref is None or s < ref[1]):
                    ref = (off, s)
            try:
                p.malloc(bid, size, 0.0)
            except OutOfMemoryError:
                assert ref is None
                continue
            live.add(bid)
            assert p._offsets[bid] == (ref[0], round_size(size))
        elif not is_malloc and bid in live:
            p.free(bid, 0.0)
            live.remove(bid)


class TestEngineIntegration:
    def test_fragmented_execution_matches_counting_when_roomy(self):
        g = small_cnn()
        cls = Classification.all_swap(g)
        a = execute(g, cls, X86_V100)
        b = execute(g, cls, X86_V100, fragmentation=True)
        assert a.makespan == pytest.approx(b.makespan, rel=1e-9)
        assert a.device_peak == b.device_peak

    def test_fragmentation_never_speeds_things_up(self):
        from tests.conftest import tiny_machine
        g = poster_example()
        m = tiny_machine(mem_mib=224, link_gbps=2.0)
        cls = Classification.all_swap(g)
        counting = execute(g, cls, m)
        try:
            block = execute(g, cls, m, fragmentation=True)
        except OutOfMemoryError:
            return  # fragmentation turning a tight fit into OOM is legal
        assert block.makespan >= counting.makespan * 0.999
