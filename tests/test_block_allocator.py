"""Best-fit block allocator: placement, coalescing, fragmentation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import OutOfMemoryError
from repro.common.units import KiB
from repro.gpusim import BlockMemoryPool
from repro.gpusim.allocator import round_size
from repro.hw import X86_V100
from repro.models import poster_example, small_cnn
from repro.runtime import Classification, execute


class TestPlacement:
    def test_simple_cycle(self):
        p = BlockMemoryPool(64 * KiB)
        p.malloc("a", 10 * KiB, 0.0)
        p.malloc("b", 10 * KiB, 0.0)
        assert p.in_use == 20 * KiB
        p.free("a", 1.0)
        p.free("b", 1.0)
        assert p.in_use == 0
        assert p.largest_free_block() == 64 * KiB  # fully coalesced

    def test_best_fit_prefers_smallest_block(self):
        p = BlockMemoryPool(100 * KiB)
        p.malloc("a", 10 * KiB, 0.0)
        p.malloc("b", 30 * KiB, 0.0)
        p.malloc("c", 10 * KiB, 0.0)
        p.free("a", 1.0)  # 10 KiB hole at offset 0
        # a 5 KiB request should land in the 10 KiB hole, not the tail
        p.malloc("d", 5 * KiB, 2.0)
        assert p._offsets["d"][0] == 0

    def test_fragmentation_failure(self):
        p = BlockMemoryPool(100 * KiB)
        p.malloc("a", 40 * KiB, 0.0)
        p.malloc("b", 20 * KiB, 0.0)
        p.malloc("c", 40 * KiB, 0.0)
        p.free("a", 1.0)
        p.free("c", 1.0)
        # 80 KiB free, but in two 40 KiB fragments
        assert p.free_bytes == 80 * KiB
        assert not p.can_fit(60 * KiB)
        with pytest.raises(OutOfMemoryError, match="FRAGMENTED"):
            p.malloc("big", 60 * KiB, 2.0)
        assert p.fragmentation() == pytest.approx(0.5)

    def test_coalesce_middle(self):
        p = BlockMemoryPool(90 * KiB)
        for i, name in enumerate("abc"):
            p.malloc(name, 30 * KiB, 0.0)
        p.free("a", 1.0)
        p.free("c", 1.0)
        p.free("b", 2.0)  # merges with both neighbours
        assert p.largest_free_block() == 90 * KiB
        assert len(p._free_blocks) == 1

    def test_can_fit_all_respects_blocks(self):
        p = BlockMemoryPool(100 * KiB)
        p.malloc("a", 40 * KiB, 0.0)
        p.malloc("b", 20 * KiB, 0.0)
        p.malloc("c", 40 * KiB, 0.0)
        p.free("a", 1.0)
        p.free("c", 1.0)
        assert p.can_fit_all([40 * KiB, 40 * KiB])
        assert p.can_fit_all([40 * KiB, 30 * KiB, 10 * KiB])  # 30+10 share one
        assert not p.can_fit_all([60 * KiB])
        assert not p.can_fit_all([40 * KiB, 35 * KiB, 10 * KiB])  # 10 left homeless


@settings(max_examples=120, deadline=None)
@given(
    st.lists(
        st.tuples(st.booleans(), st.integers(0, 7),
                  st.integers(1, 32 * KiB)),
        max_size=50,
    )
)
def test_block_pool_invariants(script):
    """Free blocks stay sorted, disjoint and coalesced; accounting matches
    the counting semantics for in_use/peak."""
    p = BlockMemoryPool(128 * KiB)
    live: dict[str, int] = {}
    for is_malloc, slot, size in script:
        bid = f"b{slot}"
        if is_malloc and bid not in live:
            try:
                p.malloc(bid, size, 0.0)
            except OutOfMemoryError:
                continue
            live[bid] = round_size(size)
        elif not is_malloc and bid in live:
            p.free(bid, 0.0)
            del live[bid]
        assert p.in_use == sum(live.values())
        # free blocks: sorted, non-overlapping, never adjacent (coalesced)
        blocks = p._free_blocks
        for (o1, s1), (o2, s2) in zip(blocks, blocks[1:]):
            assert o1 + s1 < o2
        assert sum(s for _, s in blocks) == p.capacity - p.in_use


class TestEngineIntegration:
    def test_fragmented_execution_matches_counting_when_roomy(self):
        g = small_cnn()
        cls = Classification.all_swap(g)
        a = execute(g, cls, X86_V100)
        b = execute(g, cls, X86_V100, fragmentation=True)
        assert a.makespan == pytest.approx(b.makespan, rel=1e-9)
        assert a.device_peak == b.device_peak

    def test_fragmentation_never_speeds_things_up(self):
        from tests.conftest import tiny_machine
        g = poster_example()
        m = tiny_machine(mem_mib=224, link_gbps=2.0)
        cls = Classification.all_swap(g)
        counting = execute(g, cls, m)
        try:
            block = execute(g, cls, m, fragmentation=True)
        except OutOfMemoryError:
            return  # fragmentation turning a tight fit into OOM is legal
        assert block.makespan >= counting.makespan * 0.999
