"""GraphBuilder: auto-naming, activation fusing, error paths."""

import pytest

from repro.common.errors import GraphError
from repro.graph import GraphBuilder
from repro.graph.ops import OpKind


class TestNaming:
    def test_auto_names_increment(self):
        b = GraphBuilder()
        x = b.input((2, 3, 8, 8))
        c0 = b.conv(x, 4, ksize=1)
        c1 = b.conv(c0, 4, ksize=1)
        g_names = [l.name for l in b._layers]
        assert g_names == ["input0", "conv0", "conv1"]

    def test_explicit_name(self):
        b = GraphBuilder()
        x = b.input((2, 3, 8, 8), name="data")
        assert b._layers[0].name == "data"

    def test_duplicate_explicit_name_rejected(self):
        b = GraphBuilder()
        x = b.input((2, 3, 8, 8), name="data")
        with pytest.raises(GraphError):
            b.conv(x, 4, ksize=1, name="data")


class TestFusing:
    def test_fused_by_default(self):
        b = GraphBuilder()
        x = b.input((2, 3, 8, 8))
        h = b.conv(x, 4, ksize=1, activation="relu")
        b.loss(b.linear(h, 4))
        g = b.build()
        kinds = [l.op.kind for l in g]
        assert OpKind.RELU not in kinds
        assert g[1].op.fused_activation == "relu"

    def test_unfused_materialises_relu(self):
        b = GraphBuilder(fuse_activations=False)
        x = b.input((2, 3, 8, 8))
        h = b.conv(x, 4, ksize=1, activation="relu")
        b.loss(b.linear(h, 4))
        g = b.build()
        kinds = [l.op.kind for l in g]
        assert OpKind.RELU in kinds
        conv = g.by_name("conv0")
        assert conv.op.fused_activation is None

    def test_fused_and_unfused_have_same_flops(self):
        def total(fuse):
            b = GraphBuilder(fuse_activations=fuse)
            x = b.input((2, 3, 8, 8))
            h = b.conv(x, 4, ksize=3, pad=1, activation="relu")
            h = b.batchnorm(h, activation="relu")
            b.loss(b.linear(h, 4))
            return b.build().total_fwd_flops

        assert total(True) == pytest.approx(total(False))

    def test_unfused_map_count_larger(self):
        def n_maps(fuse):
            b = GraphBuilder(fuse_activations=fuse)
            x = b.input((2, 3, 8, 8))
            h = b.conv(x, 4, ksize=1, activation="relu")
            h = b.conv(h, 4, ksize=1, activation="relu")
            b.loss(b.linear(h, 4))
            return len(b.build())

        assert n_maps(False) == n_maps(True) + 2


class TestTopology:
    def test_add_and_concat(self):
        b = GraphBuilder()
        x = b.input((2, 4, 8, 8))
        l = b.conv(x, 4, ksize=1)
        r = b.conv(x, 4, ksize=1)
        s = b.add([l, r])
        c = b.concat([l, r])
        g_spec = b.spec(c)
        assert g_spec.channels == 8
        assert b.spec(s).channels == 4

    def test_spec_lookup(self):
        b = GraphBuilder()
        x = b.input((2, 4, 8, 8))
        assert b.spec(x).shape == (2, 4, 8, 8)

    def test_build_returns_valid_graph(self):
        b = GraphBuilder("named")
        x = b.input((2, 4))
        b.loss(b.linear(x, 4))
        g = b.build()
        assert g.name == "named"
        g.validate()
