"""Memory pool: accounting, rounding, OOM, trace — including property tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import OutOfMemoryError, SimulationError
from repro.common.units import KiB, MiB
from repro.gpusim.allocator import ALLOC_ROUND, MemoryPool, round_size


class TestRounding:
    def test_zero(self):
        assert round_size(0) == 0
        assert round_size(-5) == 0

    def test_exact_multiple(self):
        assert round_size(1024) == 1024

    def test_rounds_up(self):
        assert round_size(1) == ALLOC_ROUND
        assert round_size(ALLOC_ROUND + 1) == 2 * ALLOC_ROUND


class TestBasics:
    def test_malloc_free_cycle(self):
        p = MemoryPool(1 * MiB)
        p.malloc("a", 100 * KiB, 0.0)
        assert p.is_resident("a")
        assert p.in_use == round_size(100 * KiB)
        p.free("a", 1.0)
        assert not p.is_resident("a")
        assert p.in_use == 0

    def test_peak_tracking(self):
        p = MemoryPool(1 * MiB)
        p.malloc("a", 300 * KiB, 0.0)
        p.malloc("b", 300 * KiB, 0.0)
        p.free("a", 1.0)
        p.malloc("c", 100 * KiB, 2.0)
        assert p.peak == round_size(300 * KiB) * 2

    def test_oom_raises_with_details(self):
        p = MemoryPool(100 * KiB)
        with pytest.raises(OutOfMemoryError) as ei:
            p.malloc("big", 200 * KiB, 0.0, context="F3")
        assert ei.value.requested == round_size(200 * KiB)
        assert ei.value.capacity == 100 * KiB
        assert "F3" in str(ei.value)

    def test_oom_leaves_pool_unchanged(self):
        p = MemoryPool(100 * KiB)
        p.malloc("a", 50 * KiB, 0.0)
        with pytest.raises(OutOfMemoryError):
            p.malloc("b", 90 * KiB, 0.0)
        assert p.in_use == round_size(50 * KiB)
        assert not p.is_resident("b")

    def test_double_malloc_rejected(self):
        p = MemoryPool(1 * MiB)
        p.malloc("a", 1, 0.0)
        with pytest.raises(SimulationError):
            p.malloc("a", 1, 0.0)

    def test_double_free_rejected(self):
        p = MemoryPool(1 * MiB)
        p.malloc("a", 1, 0.0)
        p.free("a", 0.0)
        with pytest.raises(SimulationError):
            p.free("a", 0.0)

    def test_free_unknown_rejected(self):
        with pytest.raises(SimulationError):
            MemoryPool(1 * MiB).free("ghost", 0.0)

    def test_invalid_capacity(self):
        with pytest.raises(SimulationError):
            MemoryPool(0)

    def test_can_fit(self):
        p = MemoryPool(10 * KiB)
        assert p.can_fit(10 * KiB)
        p.malloc("a", 5 * KiB, 0.0)
        assert not p.can_fit(6 * KiB)

    def test_size_of(self):
        p = MemoryPool(1 * MiB)
        p.malloc("a", 700, 0.0)
        assert p.size_of("a") == round_size(700)


class TestTrace:
    def test_trace_records_order(self):
        p = MemoryPool(1 * MiB)
        p.malloc("a", 1 * KiB, 0.0)
        p.malloc("b", 2 * KiB, 1.0)
        p.free("a", 2.0)
        kinds = [(e.kind, e.buffer) for e in p.trace]
        assert kinds == [("malloc", "a"), ("malloc", "b"), ("free", "a")]

    def test_trace_in_use_after(self):
        p = MemoryPool(1 * MiB)
        p.malloc("a", 1 * KiB, 0.0)
        p.free("a", 1.0)
        assert p.trace[0].in_use_after == 1 * KiB
        assert p.trace[1].in_use_after == 0

    def test_usage_curve(self):
        p = MemoryPool(1 * MiB)
        p.malloc("a", 1 * KiB, 0.5)
        curve = p.usage_curve()
        assert curve == [(0.5, 1 * KiB)]


@settings(max_examples=200, deadline=None)
@given(
    st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=9),
                  st.integers(min_value=1, max_value=64 * KiB)),
        max_size=40,
    )
)
def test_pool_invariants_under_random_ops(script):
    """Random malloc/free scripts: accounting always balances, peak is a
    running max, trace length equals the number of successful operations."""
    p = MemoryPool(256 * KiB)
    live: dict[str, int] = {}
    ops_done = 0
    for is_malloc, slot, size in script:
        bid = f"b{slot}"
        if is_malloc and bid not in live:
            try:
                p.malloc(bid, size, float(ops_done))
            except OutOfMemoryError:
                continue
            live[bid] = round_size(size)
            ops_done += 1
        elif not is_malloc and bid in live:
            p.free(bid, float(ops_done))
            del live[bid]
            ops_done += 1
        assert p.in_use == sum(live.values())
        assert 0 <= p.in_use <= p.capacity
        assert p.peak >= p.in_use
        assert len(p.trace) == ops_done
