"""Ground-truth executor and the profiling phase."""

import pytest

from repro.common.errors import OutOfMemoryError, ScheduleError
from repro.gpusim import TaskKind
from repro.hw import CostModel
from repro.models import linear_chain, poster_example, small_cnn
from repro.runtime import (
    Classification,
    SwapInPolicy,
    execute,
    images_per_second,
    iteration_time,
    run_profiling,
)
from tests.conftest import tiny_machine


class TestExecute:
    def test_in_core_runs(self, poster, x86):
        r = execute(poster, Classification.all_keep(poster), x86)
        assert r.makespan > 0
        assert r.device_peak > 0

    def test_in_core_fails_on_tiny_machine(self, poster):
        m = tiny_machine(mem_mib=224)
        with pytest.raises(OutOfMemoryError):
            execute(poster, Classification.all_keep(poster), m)

    def test_swap_fits_tiny_machine(self, poster):
        m = tiny_machine(mem_mib=224)
        r = execute(poster, Classification.all_swap(poster), m)
        assert r.device_peak <= m.usable_gpu_memory

    def test_swap_slower_than_keep(self, poster, x86):
        keep = execute(poster, Classification.all_keep(poster), x86)
        swap = execute(poster, Classification.all_swap(poster), x86)
        assert swap.makespan > keep.makespan

    def test_recompute_slower_than_keep(self, poster, x86):
        keep = execute(poster, Classification.all_keep(poster), x86)
        rec = execute(poster, Classification.all_recompute(poster), x86)
        assert rec.makespan > keep.makespan

    def test_policy_changes_timeline(self, poster):
        # eager prefetch usually wins, but its memory headroom can cost a few
        # percent on very small devices — assert it is at least competitive
        m = tiny_machine(mem_mib=224, link_gbps=4.0)
        cls = Classification.all_swap(poster)
        eager = execute(poster, cls, m, policy=SwapInPolicy.EAGER)
        naive = execute(poster, cls, m, policy=SwapInPolicy.NAIVE)
        assert eager.makespan != naive.makespan  # the policy matters
        assert eager.makespan <= naive.makespan * 1.1

    def test_deterministic(self, poster, x86):
        cls = Classification.all_swap(poster)
        a = execute(poster, cls, x86)
        b = execute(poster, cls, x86)
        assert a.makespan == b.makespan
        assert [r.tid for r in a.records] == [r.tid for r in b.records]

    def test_metrics_helpers(self, poster, x86):
        r = execute(poster, Classification.all_keep(poster), x86)
        assert iteration_time(r) == r.makespan
        assert images_per_second(r, 64) == pytest.approx(64 / r.makespan)

    def test_host_memory_tracked_for_swaps(self, poster, x86):
        r = execute(poster, Classification.all_swap(poster), x86)
        assert r.host_peak > 0

    def test_update_task_present(self, poster, x86):
        r = execute(poster, Classification.all_keep(poster), x86)
        assert len(r.records_by_kind(TaskKind.UPDATE)) == 1


class TestProfiler:
    def test_profile_covers_all_layers(self, poster, x86):
        prof = run_profiling(poster, x86)
        assert set(prof.fwd) == set(range(len(poster)))
        classifiable = set(poster.classifiable_maps())
        assert set(prof.swap_out) == classifiable
        assert set(prof.swap_in) == classifiable

    def test_backward_only_for_backward_layers(self, poster, x86):
        prof = run_profiling(poster, x86)
        assert 0 not in prof.bwd  # INPUT has no backward
        assert len(poster) - 1 in prof.bwd

    def test_baseline_timeline_attached(self, poster, x86):
        prof = run_profiling(poster, x86)
        assert prof.baseline is not None
        assert prof.baseline.makespan > 0

    def test_map_bytes_recorded(self, poster, x86):
        prof = run_profiling(poster, x86)
        assert prof.map_bytes[1] == poster[1].out_spec.nbytes

    def test_deterministic_profile_matches_ground_truth(self, poster, x86):
        prof = run_profiling(poster, x86)
        gt = execute(poster, Classification.all_swap(poster), x86)
        assert prof.baseline.makespan == pytest.approx(gt.makespan, rel=1e-12)

    def test_averaging_with_jitter_converges(self, poster, x86):
        noisy = CostModel(x86, jitter=0.10, seed=3)
        clean = run_profiling(poster, x86)
        averaged = run_profiling(poster, x86, cost_model=noisy, iterations=25)
        # averaged profile should sit near the deterministic one
        for i in clean.fwd:
            if clean.fwd[i] > 0:
                assert averaged.fwd[i] == pytest.approx(clean.fwd[i], rel=0.25)

    def test_iterations_must_be_positive(self, poster, x86):
        with pytest.raises(ScheduleError):
            run_profiling(poster, x86, iterations=0)

    def test_profile_durations_raise_for_unknown_layer(self, poster, x86):
        prof = run_profiling(poster, x86)
        dur = prof.durations()
        with pytest.raises(ScheduleError, match="no forward"):
            dur.fwd(9999)

    def test_profile_lookup_error_carries_diagnostics(self, poster, x86):
        from repro.common.errors import ProfileLookupError

        dur = run_profiling(poster, x86).durations()
        with pytest.raises(ProfileLookupError) as exc:
            dur.swap_in(9999)
        err = exc.value
        assert err.key == 9999
        assert err.table == "swap-in"
        assert err.nearest  # names the closest profiled map ids
        assert all(isinstance(k, int) for k in err.nearest)
        # still catchable as the legacy types
        assert isinstance(err, ScheduleError)
        assert isinstance(err, KeyError)

    def test_update_time_profiled(self, poster, x86):
        prof = run_profiling(poster, x86)
        assert prof.update_time > 0
