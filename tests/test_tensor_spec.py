"""TensorSpec: shapes, sizes, dtype handling."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import GraphError
from repro.graph import DTYPE_SIZES, TensorSpec


class TestConstruction:
    def test_basic(self):
        s = TensorSpec((2, 3, 4, 4))
        assert s.numel == 96
        assert s.itemsize == 4
        assert s.nbytes == 384

    def test_dtype(self):
        assert TensorSpec((4,), "float16").nbytes == 8
        assert TensorSpec((4,), "float64").nbytes == 32

    def test_empty_shape_rejected(self):
        with pytest.raises(GraphError):
            TensorSpec(())

    def test_zero_dim_rejected(self):
        with pytest.raises(GraphError):
            TensorSpec((4, 0, 2))

    def test_negative_dim_rejected(self):
        with pytest.raises(GraphError):
            TensorSpec((4, -1))

    def test_unknown_dtype_rejected(self):
        with pytest.raises(GraphError):
            TensorSpec((4,), "bfloat16")

    def test_frozen(self):
        s = TensorSpec((4,))
        with pytest.raises(AttributeError):
            s.shape = (5,)


class TestAccessors:
    def test_batch_and_channels(self):
        s = TensorSpec((8, 16, 7, 7))
        assert s.batch == 8
        assert s.channels == 16
        assert s.spatial == (7, 7)

    def test_spatial_empty_for_2d(self):
        assert TensorSpec((8, 16)).spatial == ()

    def test_channels_error_for_1d(self):
        with pytest.raises(GraphError):
            _ = TensorSpec((8,)).channels

    def test_with_batch(self):
        s = TensorSpec((8, 16, 7, 7)).with_batch(32)
        assert s.shape == (32, 16, 7, 7)

    def test_str(self):
        assert "8x16" in str(TensorSpec((8, 16)))


@given(
    st.lists(st.integers(min_value=1, max_value=64), min_size=1, max_size=5),
    st.sampled_from(sorted(DTYPE_SIZES)),
)
def test_nbytes_is_product_times_itemsize(shape, dtype):
    s = TensorSpec(tuple(shape), dtype)
    prod = 1
    for d in shape:
        prod *= d
    assert s.numel == prod
    assert s.nbytes == prod * DTYPE_SIZES[dtype]
