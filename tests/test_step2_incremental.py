"""Incremental step-2 search: recompute-delta drafts, resumable r(X) probes,
cross-round r-value reuse.

Same contract as ``tests/test_search_pruning.py``, extended to step 2: the
incremental machinery may only change how much work the swap-vs-recompute
loop does, never what it returns.

* recompute-delta drafts (``apply_recompute_delta``) must be task-for-task
  identical to a fresh ``ScheduleBuilder`` build for the same classification,
  for every swap-in policy and random keep/recompute partitions across the
  model zoo;
* the full search must choose the bit-identical plan — classification key,
  predicted time, peak memory AND the r(X) table the choice was derived
  from — with ``incremental_step2`` on and off, on multiple machines and
  under fault-injected profile noise (``FAULT_SEED`` shifts the noise like
  the fault property harness);
* the dirty-set/resume machinery must actually cut work: step-2 full
  simulations drop at least 3x on a step-2-heavy configuration;
* keep-probe elision is sound by construction: ``liveness_floor`` is an
  admissible bound (never above a feasible run's simulated peak), so a
  floor above capacity proves the simulation could only answer
  "infeasible" — elided probes change no r-value;
* the ``incremental_step2`` knob IS part of the plan-cache signature (its
  exactness is empirical, not structural — unlike ``incremental``).
"""

from __future__ import annotations

import os
import random

import pytest

from repro.common.errors import ScheduleError
from repro.pooch.classifier import (
    PoochClassifier,
    PoochConfig,
    R_ROUNDS_LIMIT,
)
from repro.runtime.plan import Classification, MapClass, SwapInPolicy
from repro.runtime.profiler import run_profiling
from repro.runtime.schedule import (
    ScheduleBuilder,
    ScheduleOptions,
    apply_keep_delta,
    apply_recompute_delta,
    liveness_floor,
)
from tests.conftest import tiny_machine
from tests.test_search_pruning import _ZOO, _assert_drafts_equal, _graph

FAULT_SEED = int(os.environ.get("FAULT_SEED", "0"))

_MACHINE = tiny_machine(mem_mib=224, link_gbps=3.0)
#: tighter memory + slower link → step 1 swaps more, step 2 flips more
_SLOW = tiny_machine(mem_mib=160, link_gbps=2.0, name="tiny-slow")

_POLICIES = [SwapInPolicy.NAIVE, SwapInPolicy.EAGER,
             SwapInPolicy.SUPERNEURONS]


def _partitions(g, rng, n=6):
    """Random (keeps, recomputes) splits, always including the
    everything-recomputable extreme."""
    maps = g.classifiable_maps()
    recable = [m for m in maps if g[m].op.recomputable]
    parts = [(set(), set(recable))]
    for _ in range(n):
        keeps = set(rng.sample(maps, rng.randint(0, len(maps) // 2)))
        pool = [m for m in recable if m not in keeps]
        if pool:
            parts.append((keeps, set(rng.sample(pool,
                                                rng.randint(1, len(pool))))))
    return parts


@pytest.mark.parametrize("policy", _POLICIES, ids=lambda p: p.name.lower())
@pytest.mark.parametrize("name,batch", _ZOO)
def test_recompute_delta_equals_fresh_build(name, batch, policy):
    """apply_recompute_delta(keep-delta base, ...) == ScheduleBuilder for the
    same keep/recompute sets, for random partitions across the zoo."""
    g = _graph(name, batch)
    prof = run_profiling(g, _MACHINE)
    durs = prof.durations()
    opts = ScheduleOptions(policy=policy)
    base = ScheduleBuilder(g, Classification.all_swap(g), durs, opts,
                           validate=False).build_raw()
    rng = random.Random(FAULT_SEED * 2027 + len(g.classifiable_maps()))
    for keeps, recs in _partitions(g, rng):
        cls = Classification.all_swap(g).with_classes(
            {m: MapClass.KEEP for m in keeps}
            | {m: MapClass.RECOMPUTE for m in recs}
        )
        fresh = ScheduleBuilder(g, cls, durs, opts,
                                validate=False).build_raw()
        kd = apply_keep_delta(base[0], base[1], base[2], keeps)
        delta = apply_recompute_delta(kd[0], kd[1], kd[2], g, durs, opts,
                                      keeps, recs)
        _assert_drafts_equal(delta, fresh)


def test_recompute_delta_leaves_base_unmodified():
    g = _graph("small_cnn", 8)
    prof = run_profiling(g, _MACHINE)
    durs = prof.durations()
    opts = ScheduleOptions()
    base = ScheduleBuilder(g, Classification.all_swap(g), durs, opts,
                           validate=False).build_raw()
    keeps = set(g.classifiable_maps()[::3])
    kd = apply_keep_delta(base[0], base[1], base[2], keeps)
    ref = apply_keep_delta(base[0], base[1], base[2], keeps)
    recs = {m for m in g.classifiable_maps()
            if g[m].op.recomputable and m not in keeps}
    apply_recompute_delta(kd[0], kd[1], kd[2], g, durs, opts, keeps, recs)
    _assert_drafts_equal(kd, ref)


@pytest.mark.parametrize("policy",
                         [SwapInPolicy.NAIVE, SwapInPolicy.SUPERNEURONS],
                         ids=lambda p: p.name.lower())
def test_recompute_delta_repairs_swap_in_triggers(policy):
    """Spliced R tasks shift backward compute positions, so every surviving
    swap-in's start trigger — "the compute task right before my first
    reader" (NAIVE) / "the nearest preceding conv backward" (SUPERNEURONS)
    — must be recomputed against the *new* compute order.  This pins the
    repair directly (not only via whole-draft equality): the repair must
    actually fire, must match the fresh build, and every trigger must
    reference a live task that precedes the swap-in's first reader."""
    from repro.gpusim.engine import StreamName
    from repro.runtime.schedule import TaskKind

    g = _graph("resnet18", 4)
    prof = run_profiling(g, _MACHINE)
    durs = prof.durations()
    opts = ScheduleOptions(policy=policy)
    base = ScheduleBuilder(g, Classification.all_swap(g), durs, opts,
                           validate=False).build_raw()
    # recompute the earliest recomputable maps: their R tasks splice at the
    # *end* of the backward pass, shifting positions for the most swap-ins
    recable = sorted(m for m in g.classifiable_maps()
                     if g[m].op.recomputable)
    recs = set(recable[: len(recable) // 2])
    cls = Classification.all_swap(g).with_classes(
        {m: MapClass.RECOMPUTE for m in recs})
    fresh = ScheduleBuilder(g, cls, durs, opts, validate=False).build_raw()
    delta = apply_recompute_delta(base[0], base[1], base[2], g, durs, opts,
                                  set(), recs)
    tasks, queues, _ = delta
    sis = [t for t in tasks.values() if t.kind is TaskKind.SWAP_IN]
    assert sis, "expected surviving swap-ins"
    changed = [t.tid for t in sis
               if t.start_deps != base[0][t.tid].start_deps]
    assert changed, "R splicing shifted no trigger: test lost its bite"
    compute_pos = {tid: n for n, tid in
                   enumerate(queues[StreamName.COMPUTE])}
    for t in sis:
        assert t.start_deps == fresh[0][t.tid].start_deps
        readers = [compute_pos[tid] for tid in compute_pos
                   if t.tid in tasks[tid].deps]
        for trig in t.start_deps:
            assert trig in compute_pos, f"{t.tid} triggers on dead {trig}"
            if readers:
                assert compute_pos[trig] < min(readers)
        if policy is SwapInPolicy.SUPERNEURONS and t.start_deps:
            (trig,) = t.start_deps
            tt = tasks[trig]
            assert (tt.kind is TaskKind.BWD
                    or compute_pos[trig] == min(readers) - 1)


def test_recompute_delta_repairs_eager_headroom():
    """EAGER auto-headroom covers the largest backward-phase allocation;
    spliced recompute tasks allocate, so when one out-allocates every task
    of the base draft the surviving swap-ins must be re-patched with the
    larger floor (== the fresh builder's)."""
    from repro.runtime.schedule import TaskKind

    g = _graph("resnet18", 4)
    prof = run_profiling(g, _MACHINE)
    durs = prof.durations()
    opts = ScheduleOptions()  # EAGER
    base = ScheduleBuilder(g, Classification.all_swap(g), durs, opts,
                           validate=False).build_raw()
    rng = random.Random(FAULT_SEED * 31 + 7)
    recable = [m for m in g.classifiable_maps() if g[m].op.recomputable]
    checked = 0
    for _ in range(8):
        recs = set(rng.sample(recable, rng.randint(1, len(recable))))
        cls = Classification.all_swap(g).with_classes(
            {m: MapClass.RECOMPUTE for m in recs})
        fresh = ScheduleBuilder(g, cls, durs, opts,
                                validate=False).build_raw()
        delta = apply_recompute_delta(base[0], base[1], base[2], g, durs,
                                      opts, set(), recs)
        want = {t.tid: t.headroom for t in fresh[0].values()
                if t.kind is TaskKind.SWAP_IN}
        got = {t.tid: t.headroom for t in delta[0].values()
              if t.kind is TaskKind.SWAP_IN}
        assert got == want
        checked += bool(want)
    assert checked, "no partition left any swap-in to check"


def test_recompute_delta_rejects_bad_inputs():
    g = _graph("small_cnn", 8)
    prof = run_profiling(g, _MACHINE)
    durs = prof.durations()
    base = ScheduleBuilder(g, Classification.all_swap(g), durs,
                           ScheduleOptions(), validate=False).build_raw()
    recable = [m for m in g.classifiable_maps() if g[m].op.recomputable]
    with pytest.raises(ScheduleError, match="kept and recomputed"):
        apply_recompute_delta(base[0], base[1], base[2], g, durs,
                              ScheduleOptions(), {recable[0]}, {recable[0]})
    with pytest.raises(ScheduleError, match="forward_refetch_gap"):
        apply_recompute_delta(base[0], base[1], base[2], g, durs,
                              ScheduleOptions(forward_refetch_gap=2),
                              set(), {recable[0]})


@pytest.mark.parametrize("machine", [_MACHINE, _SLOW],
                         ids=lambda m: m.name)
@pytest.mark.parametrize("name,batch", _ZOO)
def test_step2_plans_bit_identical_on_off(name, batch, machine):
    """The whole search returns the identical plan, predicted outcome and
    r(X) table with incremental step 2 on and off."""
    g = _graph(name, batch)
    prof = run_profiling(g, machine)
    results = {}
    for s2 in (True, False):
        clf = PoochClassifier(g, prof, machine,
                              config=PoochConfig(incremental_step2=s2))
        cls, stats = clf.classify()
        out = clf.predictor.predict(cls)
        results[s2] = (cls.key(), out.time, out.peak_memory,
                       stats.r_values, stats.flips_to_recompute)
    assert results[True] == results[False]


def test_step2_plans_identical_under_profile_noise():
    """Bit-identity must survive a perturbed (fault-injected) profile."""
    from repro.pooch import PoocH

    g = _graph("resnet18", 4)
    spec = "profile_noise=0.05"
    results = {}
    for s2 in (True, False):
        res = PoocH(_SLOW, PoochConfig(incremental_step2=s2), faults=spec,
                    fault_seed=FAULT_SEED).optimize(g)
        results[s2] = (res.classification.key(), res.predicted.time,
                       res.stats.r_values)
    assert results[True] == results[False]


def test_step2_resume_and_round_stats_populated():
    g = _graph("resnet18", 4)
    prof = run_profiling(g, _SLOW)
    clf = PoochClassifier(g, prof, _SLOW, config=PoochConfig())
    _cls, stats = clf.classify()
    assert stats.sims_step2_full + stats.sims_step2_resumed == stats.sims_step2
    assert stats.step2_rounds >= 1
    # one r-value history entry per round (bounded), first == r_values
    assert len(stats.r_rounds) == min(stats.step2_rounds, R_ROUNDS_LIMIT)
    assert stats.r_rounds[0] == stats.r_values
    assert stats.r_recomputed + stats.r_reused == sum(
        len(r) for r in stats.r_rounds)
    # EAGER is the resumable policy: most r(X) probes resume mid-replay
    assert stats.sims_step2_resumed > stats.sims_step2_full
    # reuse never serves a value the round would not have recomputed: every
    # r(X) published per round covers exactly the surviving pool
    for earlier, later in zip(stats.r_rounds, stats.r_rounds[1:]):
        assert set(later) <= set(earlier)


def test_step2_full_sims_cut_at_least_3x():
    """The acceptance criterion at test scale: on a step-2-heavy config the
    incremental path does >= 3x fewer full step-2 simulations for the
    bit-identical plan."""
    g = _graph("resnet18", 4)
    prof = run_profiling(g, _SLOW)
    results = {}
    for s2 in (True, False):
        clf = PoochClassifier(g, prof, _SLOW,
                              config=PoochConfig(incremental_step2=s2))
        cls, stats = clf.classify()
        results[s2] = (stats.sims_step2_full, cls.key())
    assert results[True][1] == results[False][1]
    assert results[False][0] >= 3 * max(results[True][0], 1), (
        f"expected >=3x fewer full step-2 sims, got "
        f"{results[False][0]} -> {results[True][0]}"
    )


@pytest.mark.parametrize("name,batch", _ZOO)
def test_liveness_floor_is_admissible_and_sound(name, batch):
    """``liveness_floor`` must never exceed the simulated peak of a feasible
    run (admissibility), and ``provably_infeasible`` must imply the
    simulation agrees (soundness) — across random keep/recompute splits."""
    g = _graph(name, batch)
    prof = run_profiling(g, _SLOW)
    pred = PoochClassifier(g, prof, _SLOW, config=PoochConfig()).predictor
    rng = random.Random(FAULT_SEED * 31 + batch)
    for keeps, recs in _partitions(g, rng, n=3):
        cls = Classification.all_swap(g).with_classes(
            {m: MapClass.KEEP for m in keeps}
            | {m: MapClass.RECOMPUTE for m in recs}
        )
        proven = pred.provably_infeasible(cls)
        out = pred.predict(cls)
        if proven:
            assert not out.feasible
        if out.feasible:
            tasks, queues, buffers, _k, _r = pred._sim_draft(cls)
            assert liveness_floor(tasks, queues, buffers) <= out.peak_memory


def test_keep_probe_elision_cuts_sims():
    """On a memory-tight machine every keep probe is provably infeasible:
    the incremental arm answers them from the liveness floor and halves the
    probe simulations, without touching any r-value."""
    g = _graph("resnet18", 4)
    prof = run_profiling(g, _SLOW)
    results = {}
    for s2 in (True, False):
        clf = PoochClassifier(g, prof, _SLOW,
                              config=PoochConfig(incremental_step2=s2))
        cls, stats = clf.classify()
        results[s2] = (cls.key(), stats.r_rounds, stats)
    on, off = results[True][2], results[False][2]
    assert results[True][:2] == results[False][:2]
    assert off.keep_probes_elided == 0
    assert on.keep_probes_elided > 0
    # an elided probe is one keep simulation the exhaustive arm had to run
    assert on.keep_probes_elided <= on.r_recomputed + on.r_reused
    assert on.sims_step2 < off.sims_step2


def test_step2_counters_identical_across_workers():
    """The memoization absorbs parallel results in serial evaluation order:
    worker fan-out must not change any search counter or the plan."""
    g = _graph("small_cnn", 8)
    prof = run_profiling(g, _SLOW)
    results = {}
    for workers in (1, 2):
        clf = PoochClassifier(g, prof, _SLOW,
                              config=PoochConfig(workers=workers))
        cls, stats = clf.classify()
        results[workers] = (cls.key(), stats.sims_step2, stats.r_recomputed,
                            stats.r_reused, stats.step2_rounds,
                            stats.r_rounds)
    assert results[1] == results[2]


def test_step2_knob_is_in_plan_signature():
    """Unlike ``incremental`` (provably plan-preserving), the step-2 knob's
    exactness is established empirically, so it keys the plan cache."""
    base = PoochConfig()
    assert PoochConfig(incremental_step2=False).signature() != base.signature()
    assert PoochConfig(incremental=False).signature() == base.signature()
    assert PoochConfig(workers=4).signature() == base.signature()


def test_non_eager_policies_fall_back_to_full_builds():
    """NAIVE/SUPERNEURONS swap-in triggers are not recompute-resumable; the
    gate must quietly fall back without changing the chosen plan."""
    g = _graph("poster_example", 2)
    prof = run_profiling(g, _MACHINE)
    for policy in (SwapInPolicy.NAIVE, SwapInPolicy.SUPERNEURONS):
        results = {}
        for s2 in (True, False):
            clf = PoochClassifier(
                g, prof, _MACHINE,
                config=PoochConfig(policy=policy, incremental_step2=s2))
            cls, stats = clf.classify()
            results[s2] = (cls.key(), stats.r_values)
        assert results[True] == results[False]
