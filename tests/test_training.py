"""Trainer: multi-iteration out-of-core training with optimizers."""

import numpy as np
import pytest

from repro.common.errors import NumericError
from repro.hw import X86_V100
from repro.models import linear_chain, mlp, small_cnn
from repro.runtime import Classification, SwapInPolicy
from repro.runtime.training import MomentumSGD, SGD, Trainer, TrainingReport
from tests.conftest import tiny_machine


def tiny_mlp():
    return mlp(batch=8, in_features=8, hidden=(16,), num_classes=4)


class TestOptimizers:
    def test_sgd_step(self):
        params = {"w": np.ones(4, dtype=np.float32)}
        SGD(lr=0.5).step(params, {"w": np.full(4, 2.0, dtype=np.float32)}, 0)
        assert np.allclose(params["w"], 0.0)

    def test_momentum_accumulates(self):
        opt = MomentumSGD(lr=1.0, momentum=0.5)
        params = {"w": np.zeros(1, dtype=np.float32)}
        g = {"w": np.ones(1, dtype=np.float32)}
        opt.step(params, g, 0)  # v=1, w=-1
        opt.step(params, g, 0)  # v=1.5, w=-2.5
        assert params["w"][0] == pytest.approx(-2.5)

    def test_momentum_per_parameter_state(self):
        opt = MomentumSGD(lr=1.0, momentum=1.0)
        pa = {"w": np.zeros(1, dtype=np.float32)}
        pb = {"w": np.zeros(1, dtype=np.float32)}
        g = {"w": np.ones(1, dtype=np.float32)}
        opt.step(pa, g, 1)
        opt.step(pb, g, 2)
        assert pa["w"][0] == pb["w"][0] == -1.0  # independent velocities


class TestTrainer:
    def test_loss_decreases_in_core(self):
        g = tiny_mlp()
        rep = Trainer(g, Classification.all_keep(g), X86_V100,
                      optimizer=SGD(lr=0.1)).run(30)
        assert rep.final_loss < rep.losses[0] * 0.5

    def test_loss_decreases_all_swap(self):
        g = tiny_mlp()
        rep = Trainer(g, Classification.all_swap(g), X86_V100,
                      optimizer=MomentumSGD(lr=0.05)).run(30)
        assert rep.final_loss < rep.losses[0] * 0.5

    def test_loss_decreases_all_recompute(self):
        g = linear_chain(4, batch=4, channels=4, image=8)
        rep = Trainer(g, Classification.all_recompute(g), X86_V100,
                      optimizer=SGD(lr=0.05)).run(20)
        assert rep.final_loss < rep.losses[0]

    def test_training_trajectory_identical_across_plans(self):
        """Same seed, same optimizer: in-core and out-of-core training visit
        bit-identical loss trajectories — the strongest end-to-end
        correctness statement in the repository."""
        g = small_cnn(batch=4, image=8)
        losses = {}
        for name, cls in (
            ("keep", Classification.all_keep(g)),
            ("swap", Classification.all_swap(g)),
            ("recompute", Classification.all_recompute(g)),
        ):
            rep = Trainer(g, cls, X86_V100, optimizer=SGD(lr=0.05),
                          seed=3).run(8)
            losses[name] = rep.losses
        assert losses["keep"] == losses["swap"] == losses["recompute"]

    def test_out_of_core_on_machine_too_small_for_incore(self):
        g = small_cnn(batch=16, image=32)
        m = tiny_machine(mem_mib=24)
        rep = Trainer(g, Classification.all_swap(g), m,
                      optimizer=SGD(lr=0.05)).run(5)
        assert rep.peak_device_bytes <= m.usable_gpu_memory
        assert len(rep.losses) == 5

    def test_iteration_times_recorded(self):
        g = tiny_mlp()
        rep = Trainer(g, Classification.all_swap(g), X86_V100).run(3)
        assert len(rep.iteration_times) == 3
        assert rep.total_time == pytest.approx(sum(rep.iteration_times))

    def test_fresh_batches_mode(self):
        g = tiny_mlp()
        tr = Trainer(g, Classification.all_keep(g), X86_V100,
                     fixed_batch=False, optimizer=SGD(lr=0.001))
        rep = tr.run(4)
        # with fresh random labels per step the loss hovers near ln(4)
        assert all(0.5 < l < 3.0 for l in rep.losses)

    def test_needs_loss_head(self):
        from repro.graph import GraphBuilder
        b = GraphBuilder("headless")
        x = b.input((2, 4))
        b.linear(x, 4)
        g = b.build()
        with pytest.raises(NumericError, match="loss"):
            Trainer(g, Classification.all_swap(g), X86_V100)

    def test_zero_iterations_rejected(self):
        g = tiny_mlp()
        with pytest.raises(NumericError):
            Trainer(g, Classification.all_keep(g), X86_V100).run(0)

    def test_report_final_loss_empty(self):
        with pytest.raises(NumericError):
            TrainingReport().final_loss


class TestAdam:
    def test_step_direction(self):
        from repro.runtime.training import Adam
        opt = Adam(lr=0.1)
        params = {"w": np.zeros(3, dtype=np.float32)}
        g = {"w": np.array([1.0, -1.0, 2.0], dtype=np.float32)}
        opt.step(params, g, 0)
        assert (params["w"][0] < 0 and params["w"][1] > 0
                and params["w"][2] < 0)

    def test_first_step_magnitude_is_lr(self):
        # with bias correction the first Adam step is ~lr regardless of grad scale
        from repro.runtime.training import Adam
        opt = Adam(lr=0.01)
        params = {"w": np.zeros(1, dtype=np.float32)}
        opt.step(params, {"w": np.array([1e-3], dtype=np.float32)}, 0)
        assert abs(params["w"][0]) == pytest.approx(0.01, rel=0.01)

    def test_trains_mlp(self):
        from repro.runtime.training import Adam
        g = tiny_mlp()
        rep = Trainer(g, Classification.all_swap(g), X86_V100,
                      optimizer=Adam(lr=0.02)).run(30)
        assert rep.final_loss < rep.losses[0] * 0.5

    def test_state_independent_per_parameter(self):
        from repro.runtime.training import Adam
        opt = Adam(lr=1.0)
        pa = {"w": np.zeros(1, dtype=np.float32)}
        g_small = {"w": np.array([1e-6], dtype=np.float32)}
        g_big = {"w": np.array([1e3], dtype=np.float32)}
        opt.step(pa, g_small, 1)
        pb = {"w": np.zeros(1, dtype=np.float32)}
        opt.step(pb, g_big, 2)
        # adaptive scaling: both take ~lr-sized first steps
        assert abs(pa["w"][0]) == pytest.approx(abs(pb["w"][0]), rel=0.01)
