"""End-to-end scenarios combining profiling, classification, baselines and
ground-truth execution — the paper's claims at test scale."""

import pytest

from repro.baselines import (
    plan_incore,
    plan_superneurons,
    plan_swap_all,
    plan_swap_all_unscheduled,
    plan_swap_opt,
)
from repro.common.errors import OutOfMemoryError
from repro.models import linear_chain, poster_example, resnet18
from repro.pooch import PoocH, PoochConfig
from repro.runtime import Classification, MapClass, execute, images_per_second
from tests.conftest import tiny_machine

CFG = PoochConfig(max_exact_li=4, step1_sim_budget=300)


@pytest.fixture(scope="module")
def machine():
    return tiny_machine(mem_mib=224, link_gbps=2.0)


@pytest.fixture(scope="module")
def pooch_result(machine):
    return PoocH(machine, CFG).optimize(poster_example())


class TestHeadlineClaims:
    def test_pooch_runs_what_incore_cannot(self, machine, pooch_result):
        g = poster_example()
        with pytest.raises(OutOfMemoryError):
            plan_incore(g).execute(g, machine)
        assert pooch_result.execute(machine).makespan > 0

    def test_pooch_beats_every_baseline(self, machine, pooch_result):
        """Fig. 15-style ordering at test scale: PoocH >= swap-opt >=
        swap-all >= swap-all w/o scheduling (in throughput)."""
        g = poster_example()
        times = {"pooch": pooch_result.execute(machine).makespan}
        for plan_fn in (plan_swap_all_unscheduled, plan_swap_all):
            plan = plan_fn(g)
            times[plan.name] = plan.execute(g, machine).makespan
        plan = plan_swap_opt(g, machine, profile=pooch_result.profile,
                             config=CFG)
        times["swap-opt"] = plan.execute(g, machine).makespan
        assert times["pooch"] <= times["swap-opt"] * 1.001
        assert times["swap-opt"] <= times["swap-all"] * 1.001
        # eager scheduling's memory headroom can cost a few percent on a
        # device this small; at paper scale it wins (see the Fig. 15 bench)
        assert times["swap-all"] <= times["swap-all(w/o scheduling)"] * 1.05

    def test_pooch_at_least_matches_superneurons(self, machine, pooch_result):
        g = poster_example()
        try:
            sn = plan_superneurons(g, machine).execute(g, machine).makespan
        except OutOfMemoryError:
            return  # superneurons failing outright also satisfies the claim
        assert pooch_result.execute(machine).makespan <= sn * 1.001

    def test_classification_is_hybrid_under_pressure(self, machine):
        """On a slow link with tight memory the chosen plan actually uses
        the hybrid toolbox (keeps something, and swaps or recomputes the
        rest) rather than collapsing to one class."""
        g = linear_chain(10, batch=64, channels=32, image=64)
        res = PoocH(machine, CFG).optimize(g)
        counts = res.classification.counts()
        assert counts[MapClass.KEEP] > 0
        assert counts[MapClass.SWAP] + counts[MapClass.RECOMPUTE] > 0


class TestRealModelSmall:
    def test_resnet18_out_of_core_roundtrip(self):
        """A real (small) ResNet on a machine scaled so it does not fit."""
        # 60% of the in-core requirement: safely above the all-swap floor
        # (params + gradients + the early layers' backward transient) but far
        # below what keeping everything would need
        g = resnet18(32)
        need = g.training_memory_bytes()
        m = tiny_machine(mem_mib=int(need / (1 << 20) * 0.6), link_gbps=8.0)
        with pytest.raises(OutOfMemoryError):
            execute(g, Classification.all_keep(g), m)
        res = PoocH(m, CFG).optimize(g)
        gt = res.execute(m)
        assert gt.device_peak <= m.usable_gpu_memory
        assert gt.makespan == pytest.approx(res.predicted.time, rel=1e-9)

    def test_throughput_reporting(self, machine, pooch_result):
        gt = pooch_result.execute(machine)
        ips = images_per_second(gt, 64)
        assert ips == pytest.approx(64 / gt.makespan)


class TestCrossMachine:
    def test_plans_differ_between_links(self):
        slow = tiny_machine(mem_mib=224, link_gbps=1.0, name="slow")
        fast = tiny_machine(mem_mib=224, link_gbps=400.0, name="fast")
        g = linear_chain(10, batch=64, channels=32, image=64)
        plan_slow = PoocH(slow, CFG).optimize(g).classification
        plan_fast = PoocH(fast, CFG).optimize(g).classification
        rec_slow = plan_slow.counts()[MapClass.RECOMPUTE]
        rec_fast = plan_fast.counts()[MapClass.RECOMPUTE]
        assert rec_slow >= rec_fast  # Table 3's direction
