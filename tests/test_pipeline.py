"""The PoocH facade: profile → classify → execute, plan portability."""

import pytest

from repro.models import poster_example
from repro.pooch import PoocH, PoochConfig
from repro.runtime import MapClass, images_per_second
from tests.conftest import tiny_machine


@pytest.fixture(scope="module")
def machine():
    return tiny_machine(mem_mib=224, link_gbps=2.0)


@pytest.fixture(scope="module")
def result(machine):
    return PoocH(machine, PoochConfig(max_exact_li=4, step1_sim_budget=300)).optimize(
        poster_example()
    )


class TestOptimize:
    def test_prediction_equals_ground_truth(self, result):
        gt = result.execute()
        assert gt.makespan == pytest.approx(result.predicted.time, rel=1e-9)

    def test_beats_all_swap_baseline(self, result):
        assert result.predicted.time < result.stats.time_all_swap

    def test_classification_covers_graph(self, result):
        assert sum(result.classification.counts().values()) == len(
            result.graph.classifiable_maps()
        )

    def test_summary_text(self, result):
        s = result.summary()
        assert "PoocH plan" in s and "predicted iteration time" in s

    def test_profile_reused_when_given(self, machine):
        g = poster_example()
        p = PoocH(machine, PoochConfig(max_exact_li=3, step1_sim_budget=100))
        first = p.optimize(g)
        second = p.optimize(g, profile=first.profile)
        assert second.profile is first.profile

    def test_profile_iterations_forwarded(self, machine):
        from repro.hw import CostModel
        p = PoocH(machine, PoochConfig(max_exact_li=3, step1_sim_budget=100),
                  cost_model=CostModel(machine, jitter=0.05, seed=9),
                  profile_iterations=5)
        res = p.optimize(poster_example())
        assert res.profile.iterations == 5


class TestPlanPortability:
    def test_foreign_plan_runs_but_differs(self, machine):
        """A plan optimized for a fast link, executed on the slow machine —
        the paper's Fig. 17 cross-machine line."""
        fast = tiny_machine(mem_mib=224, link_gbps=200.0, name="tiny-fast")
        g = poster_example()
        cfg = PoochConfig(max_exact_li=4, step1_sim_budget=300)
        native = PoocH(machine, cfg).optimize(g)
        foreign = PoocH(fast, cfg).optimize(g)
        native_time = native.execute(machine).makespan
        foreign_time = foreign.execute(machine).makespan
        # the native plan is at least as good on its own machine
        assert native_time <= foreign_time + 1e-12


class TestExplain:
    def test_explain_table(self, result):
        text = result.explain()
        assert "plan rationale" in text
        assert "r(X)" in text
        # one row per classifiable map (+3 header lines)
        n_maps = len(result.graph.classifiable_maps())
        assert len(text.splitlines()) == n_maps + 3

    def test_explain_top_limits_rows(self, result):
        text = result.explain(top=3)
        assert len(text.splitlines()) == 3 + 3

    def test_r_values_recorded_for_step2_pool(self, result):
        from repro.runtime import MapClass
        # every map flipped to recompute was evaluated in round 1
        for m in result.stats.flips_to_recompute[:1]:
            assert m in result.stats.r_values
