"""Bottleneck attribution and plan serialization."""

import json

import pytest

from repro.analysis import analyze_bottlenecks
from repro.common.errors import ScheduleError
from repro.gpusim import TaskKind
from repro.hw import X86_V100
from repro.models import mlp, poster_example
from repro.runtime import (
    Classification,
    MapClass,
    execute,
    load_plan,
    save_plan,
)
from repro.runtime.plan_io import plan_from_dict, plan_to_dict
from tests.conftest import tiny_machine


class TestBottlenecks:
    def test_incore_stall_is_only_the_input_upload(self):
        g = poster_example()
        r = execute(g, Classification.all_keep(g), X86_V100)
        rep = analyze_bottlenecks(r)
        assert rep.compute_busy > 0
        # the only wait in an in-core iteration is the initial batch upload
        by_kind = rep.stall_by_kind()
        assert set(by_kind) <= {"fwd", "startup"}
        for s in rep.stalls:
            assert s.blamed_task in ("F0", "")

    def test_swap_stalls_attributed_to_transfers(self):
        g = poster_example(batch=2048)
        r = execute(g, Classification.all_swap(g), X86_V100)
        rep = analyze_bottlenecks(r)
        assert rep.total_stall > 0.2 * rep.makespan
        by_kind = rep.stall_by_kind()
        transfer_stall = by_kind.get("swap_in", 0) + by_kind.get("swap_out", 0)
        assert transfer_stall > 0.8 * rep.total_stall

    def test_busy_plus_stall_covers_makespan(self):
        g = poster_example(batch=512)
        r = execute(g, Classification.all_swap(g), X86_V100)
        rep = analyze_bottlenecks(r)
        assert rep.compute_busy + rep.total_stall == pytest.approx(
            rep.makespan, rel=1e-9
        )

    def test_top_stalls_sorted(self):
        g = poster_example(batch=2048)
        r = execute(g, Classification.all_swap(g), X86_V100)
        top = analyze_bottlenecks(r).top_stalls(3)
        assert all(a.duration >= b.duration for a, b in zip(top, top[1:]))

    def test_render(self):
        g = poster_example()
        r = execute(g, Classification.all_swap(g), X86_V100)
        text = analyze_bottlenecks(r).render()
        assert "makespan" in text and "stalled" in text


class TestPlanIO:
    def test_roundtrip(self, tmp_path):
        g = poster_example()
        cls = Classification.all_swap(g).with_class(
            g.classifiable_maps()[1], MapClass.KEEP
        )
        path = tmp_path / "plan.json"
        save_plan(path, cls, g, machine="x86", predicted_time=0.123)
        loaded = load_plan(path, g)
        assert loaded.key() == cls.key()

    def test_provenance_recorded(self, tmp_path):
        g = poster_example()
        path = tmp_path / "plan.json"
        save_plan(path, Classification.all_swap(g), g, machine="power9")
        data = json.loads(path.read_text())
        assert data["machine"] == "power9"
        assert data["graph_name"] == g.name
        assert data["format_version"] == 1

    def test_wrong_graph_rejected(self, tmp_path):
        g = poster_example()
        other = mlp()
        path = tmp_path / "plan.json"
        save_plan(path, Classification.all_swap(g), g)
        with pytest.raises(ScheduleError, match="layer"):
            load_plan(path, other)

    def test_bad_version_rejected(self):
        g = poster_example()
        data = plan_to_dict(Classification.all_swap(g), g)
        data["format_version"] = 99
        with pytest.raises(ScheduleError, match="version"):
            plan_from_dict(data, g)

    def test_corrupt_classes_rejected(self):
        g = poster_example()
        data = plan_to_dict(Classification.all_swap(g), g)
        data["classes"]["1"] = "teleport"
        with pytest.raises(ScheduleError, match="malformed"):
            plan_from_dict(data, g)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ScheduleError, match="cannot read"):
            load_plan(tmp_path / "nope.json", poster_example())

    def test_loaded_plan_executes(self, tmp_path):
        g = poster_example()
        m = tiny_machine(mem_mib=224)
        path = tmp_path / "plan.json"
        save_plan(path, Classification.all_swap(g), g)
        cls = load_plan(path, g)
        r = execute(g, cls, m)
        assert r.makespan > 0


class TestCliPlanFlow:
    def test_save_and_run_plan(self, tmp_path, capsys):
        from repro.cli import main
        plan = tmp_path / "p.json"
        assert main(["optimize", "poster_example", "--batch", "64",
                     "--budget", "30", "--save", str(plan)]) == 0
        assert plan.exists()
        assert main(["run", "poster_example", "--batch", "64",
                     "--plan", str(plan)]) == 0
        assert "saved-plan" in capsys.readouterr().out


from hypothesis import given, settings, strategies as st


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=2), min_size=11, max_size=11))
def test_plan_io_roundtrip_property(picks):
    """Any valid classification survives a serialize/deserialize cycle."""
    from repro.models import poster_example
    g = poster_example()
    maps = sorted(Classification.all_swap(g).classes)
    classes = {}
    for m, pick in zip(maps, picks):
        options = [MapClass.SWAP, MapClass.KEEP]
        if g[m].op.recomputable:
            options.append(MapClass.RECOMPUTE)
        classes[m] = options[pick % len(options)]
    cls = Classification(classes)
    data = plan_to_dict(cls, g, machine="x86")
    assert plan_from_dict(data, g).key() == cls.key()
