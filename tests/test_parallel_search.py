"""Parallel search determinism: ``workers`` is a pure wall-clock knob.

The classifier fans step-1 leaf evaluations and step-2 r(X) rounds over a
process pool, but the parent *replays* worker outcomes in the serial
evaluation order (DESIGN.md §5) — so the chosen classification and every
``SearchStats`` field must be bit-identical to ``workers=1``, including
under mid-leaf budget truncation.
"""

from __future__ import annotations

import pytest

from repro.models import poster_example, resnet18
from repro.pooch import PoochConfig
from repro.pooch.classifier import PoochClassifier
from repro.runtime.profiler import run_profiling
from tests.conftest import tiny_machine


def _search(graph, machine, profile, config):
    return PoochClassifier(graph, profile, machine, config).classify()


def assert_workers_identical(graph, machine, serial_cfg, workers):
    """The full equality contract between serial and parallel searches."""
    from dataclasses import replace

    profile = run_profiling(graph, machine, policy=serial_cfg.policy,
                            forward_refetch_gap=serial_cfg.forward_refetch_gap)
    want_cls, want = _search(graph, machine, profile, serial_cfg)
    got_cls, got = _search(graph, machine, profile,
                           replace(serial_cfg, workers=workers))

    assert got_cls.key() == want_cls.key()
    assert got.sims_step1 == want.sims_step1
    assert got.sims_step2 == want.sims_step2
    assert got.budget_exhausted == want.budget_exhausted
    # times are exact replays, not approximations
    assert got.time_all_swap == want.time_all_swap
    assert got.time_after_step1 == want.time_after_step1
    assert got.time_after_step2 == want.time_after_step2
    assert got.exact_li == want.exact_li
    assert got.scan_order == want.scan_order
    assert got.flips_to_recompute == want.flips_to_recompute
    assert got.r_values == want.r_values
    return want


class TestDeterminism:
    def test_poster_example_workers4(self):
        # the paper's 8-layer poster network, search run to completion
        graph = poster_example()
        machine = tiny_machine(mem_mib=224)
        cfg = PoochConfig(max_exact_li=6, step1_sim_budget=400)
        stats = assert_workers_identical(graph, machine, cfg, workers=4)
        assert not stats.budget_exhausted  # full enumeration path covered

    def test_resnet18_workers4_budget_truncated(self):
        # a budget small enough to truncate mid-leaf: the replay must stop
        # at exactly the same simulation as the serial search
        graph = resnet18(batch=32)
        machine = tiny_machine(mem_mib=512)
        cfg = PoochConfig(max_exact_li=4, step1_sim_budget=80)
        stats = assert_workers_identical(graph, machine, cfg, workers=4)
        assert stats.budget_exhausted  # truncation path covered

    def test_workers2_step1_only(self):
        # the swap-opt ablation (steps=1) goes through the same pool
        graph = poster_example()
        machine = tiny_machine(mem_mib=224)
        profile = run_profiling(graph, machine)
        cfg = PoochConfig(max_exact_li=4, step1_sim_budget=100)
        want_cls, want = PoochClassifier(
            graph, profile, machine, cfg
        ).classify(steps=1)
        from dataclasses import replace

        got_cls, got = PoochClassifier(
            graph, profile, machine, replace(cfg, workers=2)
        ).classify(steps=1)
        assert got_cls.key() == want_cls.key()
        assert got.sims_step1 == want.sims_step1
        assert got.time_after_step1 == want.time_after_step1


class TestConfig:
    def test_workers_excluded_from_signature(self):
        a = PoochConfig(workers=1)
        b = PoochConfig(workers=8)
        assert a.signature() == b.signature()

    def test_signature_reflects_search_knobs(self):
        assert (PoochConfig(step1_sim_budget=100).signature()
                != PoochConfig(step1_sim_budget=200).signature())
        assert (PoochConfig(capacity_margin=1).signature()
                != PoochConfig().signature())

    def test_single_worker_uses_no_pool(self):
        g = poster_example()
        m = tiny_machine(mem_mib=224)
        p = run_profiling(g, m)
        c = PoochClassifier(g, p, m, PoochConfig(max_exact_li=3,
                                                 step1_sim_budget=50))
        assert c._make_executor() is None
