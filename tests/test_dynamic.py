"""DynamicPoocH — the paper's future-work extension (varying problem sizes)."""

import pytest

from repro.common.errors import ScheduleError
from repro.models import linear_chain
from repro.pooch import PoochConfig
from repro.pooch.dynamic import DynamicPoocH
from tests.conftest import tiny_machine

CFG = PoochConfig(max_exact_li=3, step1_sim_budget=120)


def build(batch):
    return linear_chain(6, batch=batch, channels=32, image=64)


@pytest.fixture
def machine():
    return tiny_machine(mem_mib=224, link_gbps=2.0)


class TestExactStrategy:
    def test_one_optimization_per_distinct_size(self, machine):
        d = DynamicPoocH(machine, build, CFG, strategy="exact")
        stats = d.run_stream([16, 32, 16, 16, 32, 64])
        assert stats.iterations == 6
        assert stats.optimizations == 3  # sizes 16, 32, 64
        assert stats.plan_reuses == 3

    def test_plans_cached_per_size(self, machine):
        d = DynamicPoocH(machine, build, CFG)
        a = d.plan_for(16)
        b = d.plan_for(16)
        assert a is b

    def test_iteration_times_recorded(self, machine):
        d = DynamicPoocH(machine, build, CFG)
        stats = d.run_stream([16, 32])
        assert len(stats.iteration_times) == 2
        assert stats.total_time > 0

    def test_larger_sizes_take_longer(self, machine):
        d = DynamicPoocH(machine, build, CFG)
        d.run_stream([16, 64])
        t16, t64 = d.stats.iteration_times
        assert t64 > t16


class TestNearestStrategy:
    def test_reuses_larger_plan(self, machine):
        d = DynamicPoocH(machine, build, CFG, strategy="nearest")
        d.run_iteration(64)  # optimize the big size first
        d.run_iteration(32)  # should transfer 64's plan
        assert d.stats.optimizations == 1
        assert d.stats.transfers == 1

    def test_falls_back_to_optimize_upward(self, machine):
        # going from small to large cannot reuse (memory-unsafe direction)
        d = DynamicPoocH(machine, build, CFG, strategy="nearest")
        d.run_iteration(16)
        d.run_iteration(64)
        assert d.stats.optimizations == 2
        assert d.stats.transfers == 0

    def test_nearest_cheaper_but_not_faster(self, machine):
        exact = DynamicPoocH(machine, build, CFG, strategy="exact")
        nearest = DynamicPoocH(machine, build, CFG, strategy="nearest")
        stream = [64, 48, 32, 48, 32, 64]
        exact.run_stream(stream)
        nearest.run_stream(list(stream))
        assert nearest.stats.optimizations <= exact.stats.optimizations
        # transferred plans can be mildly slower, never invalid
        assert nearest.stats.total_time <= exact.stats.total_time * 1.5


class TestProfilingReuse:
    def test_one_profiling_per_distinct_size(self, machine):
        d = DynamicPoocH(machine, build, CFG, strategy="exact")
        d.run_stream([16, 32, 16, 16, 32, 64])
        assert d.stats.profilings == 3  # sizes 16, 32, 64 — never re-profiled

    def test_nearest_transfer_does_not_reprofile(self, machine):
        # regression: transfer verification used to run its own profiling
        # (and a predictor without the search's capacity margin / gap)
        d = DynamicPoocH(machine, build, CFG, strategy="nearest")
        d.run_iteration(64)
        d.run_iteration(32)
        assert d.stats.transfers == 1
        assert d.stats.profilings == 2  # one for 64, one for 32

    def test_profile_and_predictor_cached_per_size(self, machine):
        d = DynamicPoocH(machine, build, CFG)
        assert d._profile(16) is d._profile(16)
        assert d._predictor(16) is d._predictor(16)
        assert d.stats.profilings == 1


class TestRegressionFixes:
    def test_verification_predictor_gets_full_config(self, machine):
        # regression: _transferable_plan verified donors through a predictor
        # built without capacity_margin / forward_refetch_gap, so a plan
        # could pass verification under laxer conditions than execution
        from repro.common.units import MiB

        cfg = PoochConfig(max_exact_li=3, step1_sim_budget=120,
                          capacity_margin=4 * MiB, forward_refetch_gap=3)
        d = DynamicPoocH(machine, build, cfg, strategy="nearest")
        p = d._predictor(16)
        assert p.capacity_margin == cfg.capacity_margin
        assert p.forward_refetch_gap == cfg.forward_refetch_gap
        assert p.policy == cfg.policy

    def test_execute_gets_schedule_options(self, machine, monkeypatch):
        # regression: run_iteration called execute() without options,
        # silently dropping the configured forward_refetch_gap
        import repro.pooch.dynamic as dyn

        captured = {}
        real_execute = dyn.execute

        def spy(graph, plan, machine_, **kw):
            captured.update(kw)
            return real_execute(graph, plan, machine_, **kw)

        monkeypatch.setattr(dyn, "execute", spy)
        cfg = PoochConfig(max_exact_li=3, step1_sim_budget=120,
                          forward_refetch_gap=2)
        d = DynamicPoocH(machine, build, cfg)
        d.run_iteration(16)
        opts = captured["options"]
        assert opts is not None
        assert opts.forward_refetch_gap == 2
        assert opts.policy == cfg.policy
        # verification and execution share the exact same options object
        assert opts is d._options


class TestValidation:
    def test_unknown_strategy(self, machine):
        with pytest.raises(ScheduleError):
            DynamicPoocH(machine, build, CFG, strategy="magic")

    def test_structure_mismatch_rejected(self, machine):
        def bad_build(size):
            return linear_chain(int(size), batch=8, channels=8, image=16)

        d = DynamicPoocH(machine, bad_build, CFG)
        d.run_iteration(4)
        with pytest.raises(ScheduleError, match="structure"):
            d.run_iteration(6)


class TestFaultsAndReplan:
    """Resilient execution + drift-triggered re-planning (ISSUE 2)."""

    def _scripted(self, fail_transfers):
        from repro.faults import FaultInjector, FaultSpec

        class Scripted(FaultInjector):
            def transfer_failures(self, tid, cap, epoch=0):
                return fail_transfers.get((epoch, tid), 0)

        return Scripted(FaultSpec(stall_time=1e-3), seed=0)

    def _first_transfer_tid(self, machine, batch):
        from repro.hw import CostModel
        from repro.runtime import Classification
        from repro.runtime.durations import CostModelDurations
        from repro.runtime.schedule import ScheduleOptions, build_schedule

        g = build(batch)
        sched = build_schedule(
            g, Classification.all_swap(g),
            CostModelDurations(g, CostModel(machine)), ScheduleOptions())
        return next(t.tid for t in sched.tasks.values()
                    if t.stream.value != "compute")

    def test_faulted_transfer_retried_then_succeeds(self, machine):
        tid = self._first_transfer_tid(machine, 16)
        inj = self._scripted({(1, tid): 2})  # two transient stalls, then ok
        d = DynamicPoocH(machine, build, CFG, faults=inj,
                         replan_tolerance=None)
        clean = DynamicPoocH(machine, build, CFG)
        r = d.run_iteration(16)
        r_clean = clean.run_iteration(16)
        assert d.stats.transfer_retries == 2
        assert d.stats.fallbacks == 0
        # the retries honestly cost time on the timeline
        assert r.makespan > r_clean.makespan

    def test_retry_budget_exhausted_engages_fallback(self, machine):
        from repro.faults import RetryPolicy

        tid = self._first_transfer_tid(machine, 16)
        # the transfer is dead during the first (chosen-plan) epoch only —
        # the fallback entry draws under a later epoch and succeeds
        inj = self._scripted({(1, tid): 99})
        d = DynamicPoocH(machine, build, CFG, faults=inj,
                         retry=RetryPolicy(max_transfer_retries=3),
                         replan_tolerance=None)
        r = d.run_iteration(16)
        assert r.makespan > 0
        assert d.stats.fallbacks >= 1

    def test_drift_replans_exactly_once(self, machine):
        # the link delivers a third of the bandwidth the profile assumed:
        # every iteration measures far above prediction
        d = DynamicPoocH(machine, build, CFG, faults="bandwidth_factor=0.33",
                         fault_seed=5, replan_tolerance=0.1)
        d.run_stream([16, 16, 16])
        assert d.stats.replans == 1  # once, not once per iteration
        assert d.stats.profilings == 2  # initial + drift re-profile
        d.run_iteration(16)
        assert d.stats.replans == 1

    def test_no_replan_within_tolerance(self, machine):
        d = DynamicPoocH(machine, build, CFG, replan_tolerance=0.25)
        d.run_stream([16, 16])
        assert d.stats.replans == 0
        assert d.stats.transfer_retries == 0
        assert d.stats.fallbacks == 0

    def test_replan_tolerance_validated(self, machine):
        with pytest.raises(ScheduleError):
            DynamicPoocH(machine, build, CFG, replan_tolerance=0.0)

    def test_faulted_stream_is_reproducible(self, machine):
        spec = "duration_noise=0.1,stall_prob=0.1"

        def once():
            d = DynamicPoocH(machine, build, CFG, faults=spec, fault_seed=9)
            d.run_stream([16, 32, 16])
            return (tuple(d.stats.iteration_times), d.stats.transfer_retries,
                    d.stats.replans, d.stats.fallbacks)

        assert once() == once()
