"""Experiment drivers: memory curves, sweeps, ablations, caching."""

import pytest

from repro.experiments import (
    ablation_rows,
    classification_table,
    clear_cache,
    memory_curve,
    optimize_cached,
    performance_sweep,
    resnet50_memory_curve,
    resnext3d_memory_curve,
)
from repro.models import poster_example
from repro.pooch import PoochConfig
from tests.conftest import tiny_machine

CFG = PoochConfig(max_exact_li=3, step1_sim_budget=120)


@pytest.fixture(autouse=True)
def isolated_cache():
    clear_cache()
    yield
    clear_cache()


@pytest.fixture(scope="module")
def machine():
    return tiny_machine(mem_mib=224, link_gbps=2.0)


class TestMemoryCurves:
    def test_resnet50_curve_estimates_only(self):
        rows = resnet50_memory_curve(batches=(32, 64, 640), measure=False)
        assert [r.label for r in rows] == ["batch=32", "batch=64", "batch=640"]
        assert rows[0].estimate_bytes < rows[1].estimate_bytes
        assert rows[2].estimate_gib > 45
        assert rows[0].fits_16gb and not rows[2].fits_16gb

    def test_resnext3d_curve(self):
        rows = resnext3d_memory_curve(
            sizes=((16, 112, 112), (96, 512, 512)), measure=False
        )
        assert rows[0].fits_16gb and not rows[1].fits_16gb

    def test_measured_peak_when_it_fits(self, machine):
        rows = memory_curve([("p", poster_example)], machine=machine)
        # poster_example needs ~320 MiB, machine has 216 usable -> OOM
        assert rows[0].measured_peak is None

    def test_measured_peak_close_to_estimate(self):
        from repro.hw import X86_V100
        rows = memory_curve([("p", poster_example)], machine=X86_V100)
        assert rows[0].measured_peak is not None
        assert rows[0].measured_peak == pytest.approx(
            rows[0].estimate_bytes, rel=0.35
        )


class TestSweep:
    def test_methods_and_failures(self, machine):
        sizes = [("b64", 64, poster_example)]
        rows = performance_sweep("poster", sizes, machine,
                                 methods=("in-core", "superneurons", "pooch"),
                                 config=CFG)
        by_method = {r.method: r for r in rows}
        assert not by_method["in-core"].ok  # too big for the tiny machine
        assert by_method["in-core"].failure
        assert by_method["pooch"].ok
        assert by_method["pooch"].images_per_second > 0

    def test_cross_machine_line(self, machine):
        other = tiny_machine(mem_mib=224, link_gbps=200.0, name="other")
        rows = performance_sweep("poster", [("b64", 64, poster_example)],
                                 machine, methods=("pooch",), config=CFG,
                                 cross_machine=other)
        methods = {r.method for r in rows}
        assert "pooch[other-plan]" in methods

    def test_unknown_method(self, machine):
        with pytest.raises(ValueError):
            performance_sweep("poster", [("b", 1, poster_example)], machine,
                              methods=("magic",))


class TestAblation:
    def test_four_rows_ordered(self, machine):
        rows = ablation_rows("poster", poster_example, 64, machine, CFG)
        assert [r.method for r in rows] == [
            "swap-all(w/o scheduling)", "swap-all", "swap-opt", "pooch",
        ]
        base = rows[0]
        assert base.speedup == pytest.approx(1.0)
        # cumulative optimizations never hurt (allow tiny scheduling noise)
        ok_rows = [r for r in rows if r.images_per_second is not None]
        assert ok_rows[-1].images_per_second >= ok_rows[0].images_per_second


class TestTable3Driver:
    def test_rows_per_method_and_machine(self, machine):
        other = tiny_machine(mem_mib=224, link_gbps=200.0, name="other")
        rows = classification_table("poster", poster_example,
                                    (machine, other), CFG)
        assert len(rows) == 4
        sn = [r for r in rows if r.method == "superneurons"]
        assert sn[0].keep == sn[1].keep
        assert sn[0].swap == sn[1].swap


class TestCache:
    def test_optimize_cached_reuses(self, machine):
        a = optimize_cached("poster", poster_example, machine, CFG)
        b = optimize_cached("poster", poster_example, machine, CFG)
        assert a is b

    def test_different_machine_not_shared(self, machine):
        other = tiny_machine(mem_mib=224, link_gbps=200.0, name="other")
        a = optimize_cached("poster", poster_example, machine, CFG)
        b = optimize_cached("poster", poster_example, other, CFG)
        assert a is not b

    def test_clear(self, machine):
        a = optimize_cached("poster", poster_example, machine, CFG)
        clear_cache()
        b = optimize_cached("poster", poster_example, machine, CFG)
        assert a is not b


class TestAblationRowOk:
    def test_ok_property(self):
        from repro.experiments.ablation import AblationRow
        assert AblationRow("m", "x", 1.0, 1.0).ok
        assert not AblationRow("m", "x", None, None, "boom").ok
