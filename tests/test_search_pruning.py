"""Search-cost machinery: delta drafts, checkpoint/resume, branch-and-bound.

The contract under test is *exact equivalence*: pruning and incremental
replay may only change how much work the search does, never what it returns.

* delta drafts (``apply_keep_delta``) must be task-for-task identical to a
  fresh ``ScheduleBuilder`` build for the same classification;
* a ``FastEngine`` replay resumed from any of its own checkpoints must
  reproduce the full run bit-for-bit;
* the pruned + incremental search must return the identical plan, predicted
  time and peak memory as the exhaustive scan, across the model zoo
  (``FAULT_SEED`` shifts the profiled machine/model mix like the fault
  property harness);
* the ``prune`` knob must be part of the plan-cache signature, the
  ``incremental`` knob must not be.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.gpusim.fastengine import _STREAM_ORDER, FastEngine
from repro.hw import X86_V100
from repro.models import build_model, poster_example, small_cnn
from repro.pooch.classifier import (
    PoochClassifier,
    PoochConfig,
    SearchStats,
    _LeafCursor,
)
from repro.pooch.predictor import (
    TimelinePredictor,
    _buffers_equal,
    _tasks_equal,
)
from repro.runtime.plan import Classification, MapClass
from repro.runtime.profiler import run_profiling
from repro.runtime.schedule import ScheduleBuilder, apply_keep_delta
from tests.conftest import tiny_machine

FAULT_SEED = int(os.environ.get("FAULT_SEED", "0"))

_MACHINE = tiny_machine(mem_mib=224, link_gbps=3.0)

#: small zoo slice: the shapes that exercise branches (skip connections,
#: dense fan-in, plain chains) without slow profiling
_ZOO = [
    ("small_cnn", 8),
    ("poster_example", 2),
    ("resnet18", 4),
    ("mobilenet_v1", 2),
]


def _graph(name: str, batch: int):
    return build_model(name, batch=batch)


def _alloc_lists(buffers):
    out: dict[str, list] = {}
    for b in buffers.values():
        if b.alloc_by is not None:
            out.setdefault(b.alloc_by, []).append(b)
    return out


def _assert_drafts_equal(a, b):
    """Engine-visible equality of two (tasks, queues, buffers) drafts."""
    ta, qa, ba = a
    tb, qb, bb = b
    for s in _STREAM_ORDER:
        assert qa.get(s, []) == qb.get(s, []), f"queue order differs on {s}"
    assert set(ta) == set(tb)
    la, lb = _alloc_lists(ba), _alloc_lists(bb)
    for tid in ta:
        assert _tasks_equal(ta[tid], tb[tid],
                            la.get(tid, []), lb.get(tid, [])), (
            f"task {tid} differs between delta and fresh draft"
        )
    assert set(ba) == set(bb)
    for bid in ba:
        assert _buffers_equal(ba[bid], bb[bid]), f"buffer {bid} differs"


@pytest.mark.parametrize("name,batch", _ZOO)
def test_delta_draft_equals_fresh_build(name, batch):
    """apply_keep_delta(all_swap base, keeps) == ScheduleBuilder for the
    same keep-set, for random keep-sets across the zoo."""
    g = _graph(name, batch)
    prof = run_profiling(g, _MACHINE)
    durs = prof.durations()
    pred = TimelinePredictor(g, prof, _MACHINE)
    base = ScheduleBuilder(g, Classification.all_swap(g), durs,
                           pred.options, validate=False).build_raw()
    maps = g.classifiable_maps()
    rng = random.Random(FAULT_SEED * 1021 + len(maps))
    keep_sets = [set(), set(maps)]
    keep_sets += [set(rng.sample(maps, rng.randint(1, len(maps))))
                  for _ in range(6)]
    for keeps in keep_sets:
        cls = Classification.all_swap(g).with_classes(
            {m: MapClass.KEEP for m in keeps}
        )
        fresh = ScheduleBuilder(g, cls, durs, pred.options,
                                validate=False).build_raw()
        delta = apply_keep_delta(base[0], base[1], base[2], keeps)
        _assert_drafts_equal(delta, fresh)


def test_delta_draft_leaves_base_unmodified():
    g = _graph("small_cnn", 8)
    prof = run_profiling(g, _MACHINE)
    pred = TimelinePredictor(g, prof, _MACHINE)
    durs = prof.durations()
    base = ScheduleBuilder(g, Classification.all_swap(g), durs,
                           pred.options, validate=False).build_raw()
    ref = ScheduleBuilder(g, Classification.all_swap(g), durs,
                          pred.options, validate=False).build_raw()
    maps = g.classifiable_maps()
    apply_keep_delta(base[0], base[1], base[2], set(maps[::2]))
    _assert_drafts_equal(base, ref)


@pytest.mark.parametrize("name,batch", _ZOO)
def test_engine_resume_is_bit_identical(name, batch):
    """Resuming a replay from any of its own checkpoints reproduces the
    full run's makespan and peaks exactly."""
    g = _graph(name, batch)
    prof = run_profiling(g, _MACHINE)
    pred = TimelinePredictor(g, prof, _MACHINE)
    maps = g.classifiable_maps()
    cls = Classification.all_swap(g).with_classes(
        {m: MapClass.KEEP for m in maps[: len(maps) // 2]}
    )
    tasks, queues, buffers = pred.draft(cls)
    cap = _MACHINE.usable_gpu_memory
    host = _MACHINE.cpu_mem_capacity
    eng = FastEngine(tasks, queues, buffers, device_capacity=cap,
                     host_capacity=host)
    assert eng.checkpointable
    full = eng.run(checkpoint_every=8)
    assert eng.checkpoints, "expected checkpoints to be recorded"
    for cp in eng.checkpoints:
        again = FastEngine(tasks, queues, buffers, device_capacity=cap,
                           host_capacity=host)
        assert again.run(resume_from=cp) == full


def _checkpoint_fixture(name="resnet18", batch=4, keep_stride=2):
    """An engine mid-way through a mixed keep/swap replay, with a spy on
    ``_checkpoint`` that also snapshots the recording pools at capture."""
    g = _graph(name, batch)
    prof = run_profiling(g, _MACHINE)
    pred = TimelinePredictor(g, prof, _MACHINE)
    maps = g.classifiable_maps()
    cls = Classification.all_swap(g).with_classes(
        {m: MapClass.KEEP for m in maps[::keep_stride]}
    )
    draft = pred.draft(cls)
    caps = dict(device_capacity=_MACHINE.usable_gpu_memory,
                host_capacity=_MACHINE.cpu_mem_capacity)
    eng = FastEngine(*draft, **caps)
    snaps = []
    orig = eng._checkpoint

    def spy():
        cp = orig()
        snaps.append((cp, eng.device.snapshot_state(),
                      eng.host.snapshot_state()))
        return cp

    eng._checkpoint = spy
    eng.run(checkpoint_every=6)
    assert snaps, "expected checkpoints to be recorded"
    return draft, caps, snaps


def test_restore_reconstructs_pool_contents_exactly():
    """``_restore`` never copies pool contents — it rebuilds residency from
    the resuming engine's own alloc lists and free countdowns.  On the same
    schedule that reconstruction must reproduce the recording pools
    *buffer-for-buffer* (sizes dicts, not just the in-use/peak scalars the
    checkpoint carries), including in-flight scratch workspaces and
    swapped-out host instances."""
    draft, caps, snaps = _checkpoint_fixture()
    for cp, dev_snap, host_snap in snaps:
        fresh = FastEngine(*draft, **caps)
        fresh._restore(cp)
        assert fresh.device.snapshot_state() == dev_snap
        assert fresh.host.snapshot_state() == host_snap


def test_restore_residency_sums_to_recorded_watermark():
    """The reconstructed sizes dict and the recorded ``in_use`` scalar are
    produced by independent mechanisms; they must agree or the resumed run
    would drift from the from-scratch replay on the first allocation."""
    draft, caps, snaps = _checkpoint_fixture()
    for cp, _dev, _host in snaps:
        fresh = FastEngine(*draft, **caps)
        fresh._restore(cp)
        dev_sizes, dev_in_use, dev_peak = fresh.device.snapshot_state()
        host_sizes, host_in_use, _ = fresh.host.snapshot_state()
        assert sum(dev_sizes.values()) == dev_in_use == cp.dev_in_use
        assert sum(host_sizes.values()) == host_in_use == cp.host_in_use
        assert dev_peak == cp.dev_peak >= dev_in_use


def test_checkpoint_completed_and_started_sets():
    """`completed()` is a prefix copy of the shared completion-order list,
    and the lazily built sets stay consistent with it and the in-flight
    tuple even as the recording engine keeps appending."""
    draft, caps, snaps = _checkpoint_fixture()
    n_tasks = len(draft[0])
    prev = -1
    for cp, _dev, _host in snaps:
        done = cp.completed()
        assert len(done) == cp.progress
        assert len(done) > prev, "checkpoints must advance"
        prev = len(done)
        assert cp.completed_set() == frozenset(done)
        assert cp.started_set() == frozenset(done) | {
            tid for _, _, tid in cp.inflight
        }
        # the shared source list outgrew the prefix: later completions must
        # not leak into an earlier checkpoint's view
        assert len(cp.completed_src) >= len(done)
    assert len(cp.completed_src) <= n_tasks


def test_alloc_on_ready_drafts_refuse_checkpointing():
    """SUPERNEURONS swap-ins are ungated and reserve memory the moment
    their trigger fires — engine state then depends on non-head queue
    positions, which the checkpoint validity argument does not cover, so
    the engine must declare itself non-checkpointable and record nothing."""
    from repro.runtime.plan import SwapInPolicy
    from repro.runtime.schedule import ScheduleOptions

    g = _graph("small_cnn", 8)
    prof = run_profiling(g, _MACHINE)
    draft = ScheduleBuilder(
        g, Classification.all_swap(g), prof.durations(),
        ScheduleOptions(policy=SwapInPolicy.SUPERNEURONS), validate=False,
    ).build_raw()
    eng = FastEngine(*draft, device_capacity=_MACHINE.usable_gpu_memory,
                     host_capacity=_MACHINE.cpu_mem_capacity)
    assert not eng.checkpointable
    eng.run(checkpoint_every=4)
    assert eng.checkpoints == []


@pytest.mark.parametrize("name,batch", _ZOO)
def test_search_equivalence_across_zoo(name, batch):
    """Pruned + incremental search chooses the identical plan (key,
    predicted time, peak memory) as the exhaustive from-scratch scan."""
    g = _graph(name, batch)
    prof = run_profiling(g, _MACHINE)
    results = {}
    for label, prune, inc in (("exhaustive", False, False),
                              ("optimized", True, True)):
        cfg = PoochConfig(prune=prune, incremental=inc)
        clf = PoochClassifier(g, prof, _MACHINE, config=cfg)
        cls, stats = clf.classify()
        out = clf.predictor.predict(cls)
        results[label] = (cls.key(), out.time, out.peak_memory,
                          clf.predictor.simulations)
    ex, opt = results["exhaustive"], results["optimized"]
    assert opt[:3] == ex[:3], f"plans differ: {ex} vs {opt}"


def test_incremental_resumes_and_stats_populated():
    g = _graph("resnet18", 4)
    prof = run_profiling(g, _MACHINE)
    # vectorize=False: this test is about the *event-engine* replay modes
    # (full vs prefix-resumed); under vectorization most step-1 sims never
    # touch the event engines at all
    clf = PoochClassifier(g, prof, _MACHINE,
                          config=PoochConfig(vectorize=False))
    _cls, stats = clf.classify()
    assert stats.wall_time_s > 0.0
    assert stats.leaves_total >= stats.leaves_evaluated > 0
    assert stats.sims_full + stats.sims_resumed == clf.predictor.simulations
    # prefix sharing must actually fire: sibling candidates differ in a
    # handful of maps, so most replays resume
    assert stats.sims_resumed > stats.sims_full


def test_vectorized_stats_account_for_all_simulations():
    """Under the default (vectorized) search every simulation is either a
    lockstep-swept outcome or an event-engine fallback, and the fallbacks
    are exactly the full/resumed replays."""
    g = _graph("resnet18", 4)
    prof = run_profiling(g, _MACHINE)
    clf = PoochClassifier(g, prof, _MACHINE, config=PoochConfig())
    _cls, stats = clf.classify()
    assert stats.sims_vectorized > 0
    assert stats.vector_sweeps > 0
    assert stats.vector_candidates >= stats.sims_vectorized
    assert (stats.sims_vectorized + stats.sims_fallback
            == stats.sims_step1 + stats.sims_step2)
    # every simulation is a swept outcome or an event-engine replay (the
    # all-swap baseline runs outside the step windows, hence ``full``)
    assert (stats.sims_vectorized + stats.sims_full + stats.sims_resumed
            == clf.predictor.simulations)


def test_incremental_counters_do_not_change_budget():
    """`simulations` (the budget meter) counts resumed replays exactly like
    full ones, so budget truncation is incremental-independent."""
    g = _graph("small_cnn", 8)
    prof = run_profiling(g, _MACHINE)
    counts = {}
    for inc in (False, True):
        cfg = PoochConfig(incremental=inc, step1_sim_budget=40)
        clf = PoochClassifier(g, prof, _MACHINE, config=cfg)
        cls, stats = clf.classify()
        counts[inc] = (clf.predictor.simulations, cls.key())
    assert counts[False] == counts[True]


class _FakeBounds:
    """Synthetic bounds: subtrees committing map 0 to SWAP are unbeatable."""

    def __init__(self, poison: int, incumbent: float) -> None:
        self.poison = poison
        self.incumbent = incumbent

    def lower_bound(self, committed) -> float:
        return self.incumbent + 1.0 if self.poison in committed else 0.0


def test_leaf_cursor_prunes_poisoned_subtree():
    exact = [0, 1, 2]
    # keep-first DFS enumeration over {0,1,2}
    leaves = []
    for d0 in (True, False):
        for d1 in (True, False):
            for d2 in (True, False):
                leaves.append(tuple(
                    m for m, dec in zip(exact, (d0, d1, d2)) if dec
                ))
    stats = SearchStats()
    cursor = _LeafCursor(leaves, exact, _FakeBounds(0, 1.0), stats)
    seen = []
    while True:
        nxt = cursor.next(best_time=1.0)
        if nxt is None:
            break
        seen.append(nxt[1])
    # every surviving leaf keeps map 0; the swap-0 half of the tree is one
    # pruned subtree of four leaves
    assert all(0 in leaf for leaf in seen)
    assert len(seen) == 4
    assert stats.subtrees_pruned == 1
    assert stats.leaves_pruned == 4


def test_no_prune_cursor_visits_everything():
    exact = [0, 1]
    leaves = [(0, 1), (0,), (1,), ()]
    stats = SearchStats()
    cursor = _LeafCursor(leaves, exact, None, stats)
    seen = []
    while True:
        nxt = cursor.next(best_time=-1.0)  # incumbent beats every bound
        if nxt is None:
            break
        seen.append(nxt[1])
    assert seen == leaves
    assert stats.subtrees_pruned == 0


def test_prune_knob_is_in_plan_signature_incremental_is_not():
    base = PoochConfig()
    assert PoochConfig(prune=False).signature() != base.signature()
    assert PoochConfig(incremental=False).signature() == base.signature()
    assert PoochConfig(workers=4).signature() == base.signature()


def test_plan_cache_misses_across_prune_setting(tmp_path):
    from repro.runtime.plan_io import PlanCache

    g = small_cnn(4)
    cache = PlanCache(tmp_path)
    cls = Classification.all_swap(g)
    on, off = PoochConfig(prune=True), PoochConfig(prune=False)
    cache.store_plan(g, X86_V100, on.signature(), cls, predicted_time=1.0)
    assert cache.load_plan(g, X86_V100, on.signature()) is not None
    assert cache.load_plan(g, X86_V100, off.signature()) is None
