"""Search-cost machinery: delta drafts, checkpoint/resume, branch-and-bound.

The contract under test is *exact equivalence*: pruning and incremental
replay may only change how much work the search does, never what it returns.

* delta drafts (``apply_keep_delta``) must be task-for-task identical to a
  fresh ``ScheduleBuilder`` build for the same classification;
* a ``FastEngine`` replay resumed from any of its own checkpoints must
  reproduce the full run bit-for-bit;
* the pruned + incremental search must return the identical plan, predicted
  time and peak memory as the exhaustive scan, across the model zoo
  (``FAULT_SEED`` shifts the profiled machine/model mix like the fault
  property harness);
* the ``prune`` knob must be part of the plan-cache signature, the
  ``incremental`` knob must not be.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.gpusim.fastengine import _STREAM_ORDER, FastEngine
from repro.hw import X86_V100
from repro.models import build_model, poster_example, small_cnn
from repro.pooch.classifier import (
    PoochClassifier,
    PoochConfig,
    SearchStats,
    _LeafCursor,
)
from repro.pooch.predictor import (
    TimelinePredictor,
    _buffers_equal,
    _tasks_equal,
)
from repro.runtime.plan import Classification, MapClass
from repro.runtime.profiler import run_profiling
from repro.runtime.schedule import ScheduleBuilder, apply_keep_delta
from tests.conftest import tiny_machine

FAULT_SEED = int(os.environ.get("FAULT_SEED", "0"))

_MACHINE = tiny_machine(mem_mib=224, link_gbps=3.0)

#: small zoo slice: the shapes that exercise branches (skip connections,
#: dense fan-in, plain chains) without slow profiling
_ZOO = [
    ("small_cnn", 8),
    ("poster_example", 2),
    ("resnet18", 4),
    ("mobilenet_v1", 2),
]


def _graph(name: str, batch: int):
    return build_model(name, batch=batch)


def _alloc_lists(buffers):
    out: dict[str, list] = {}
    for b in buffers.values():
        if b.alloc_by is not None:
            out.setdefault(b.alloc_by, []).append(b)
    return out


def _assert_drafts_equal(a, b):
    """Engine-visible equality of two (tasks, queues, buffers) drafts."""
    ta, qa, ba = a
    tb, qb, bb = b
    for s in _STREAM_ORDER:
        assert qa.get(s, []) == qb.get(s, []), f"queue order differs on {s}"
    assert set(ta) == set(tb)
    la, lb = _alloc_lists(ba), _alloc_lists(bb)
    for tid in ta:
        assert _tasks_equal(ta[tid], tb[tid],
                            la.get(tid, []), lb.get(tid, [])), (
            f"task {tid} differs between delta and fresh draft"
        )
    assert set(ba) == set(bb)
    for bid in ba:
        assert _buffers_equal(ba[bid], bb[bid]), f"buffer {bid} differs"


@pytest.mark.parametrize("name,batch", _ZOO)
def test_delta_draft_equals_fresh_build(name, batch):
    """apply_keep_delta(all_swap base, keeps) == ScheduleBuilder for the
    same keep-set, for random keep-sets across the zoo."""
    g = _graph(name, batch)
    prof = run_profiling(g, _MACHINE)
    durs = prof.durations()
    pred = TimelinePredictor(g, prof, _MACHINE)
    base = ScheduleBuilder(g, Classification.all_swap(g), durs,
                           pred.options, validate=False).build_raw()
    maps = g.classifiable_maps()
    rng = random.Random(FAULT_SEED * 1021 + len(maps))
    keep_sets = [set(), set(maps)]
    keep_sets += [set(rng.sample(maps, rng.randint(1, len(maps))))
                  for _ in range(6)]
    for keeps in keep_sets:
        cls = Classification.all_swap(g).with_classes(
            {m: MapClass.KEEP for m in keeps}
        )
        fresh = ScheduleBuilder(g, cls, durs, pred.options,
                                validate=False).build_raw()
        delta = apply_keep_delta(base[0], base[1], base[2], keeps)
        _assert_drafts_equal(delta, fresh)


def test_delta_draft_leaves_base_unmodified():
    g = _graph("small_cnn", 8)
    prof = run_profiling(g, _MACHINE)
    pred = TimelinePredictor(g, prof, _MACHINE)
    durs = prof.durations()
    base = ScheduleBuilder(g, Classification.all_swap(g), durs,
                           pred.options, validate=False).build_raw()
    ref = ScheduleBuilder(g, Classification.all_swap(g), durs,
                          pred.options, validate=False).build_raw()
    maps = g.classifiable_maps()
    apply_keep_delta(base[0], base[1], base[2], set(maps[::2]))
    _assert_drafts_equal(base, ref)


@pytest.mark.parametrize("name,batch", _ZOO)
def test_engine_resume_is_bit_identical(name, batch):
    """Resuming a replay from any of its own checkpoints reproduces the
    full run's makespan and peaks exactly."""
    g = _graph(name, batch)
    prof = run_profiling(g, _MACHINE)
    pred = TimelinePredictor(g, prof, _MACHINE)
    maps = g.classifiable_maps()
    cls = Classification.all_swap(g).with_classes(
        {m: MapClass.KEEP for m in maps[: len(maps) // 2]}
    )
    tasks, queues, buffers = pred.draft(cls)
    cap = _MACHINE.usable_gpu_memory
    host = _MACHINE.cpu_mem_capacity
    eng = FastEngine(tasks, queues, buffers, device_capacity=cap,
                     host_capacity=host)
    assert eng.checkpointable
    full = eng.run(checkpoint_every=8)
    assert eng.checkpoints, "expected checkpoints to be recorded"
    for cp in eng.checkpoints:
        again = FastEngine(tasks, queues, buffers, device_capacity=cap,
                           host_capacity=host)
        assert again.run(resume_from=cp) == full


@pytest.mark.parametrize("name,batch", _ZOO)
def test_search_equivalence_across_zoo(name, batch):
    """Pruned + incremental search chooses the identical plan (key,
    predicted time, peak memory) as the exhaustive from-scratch scan."""
    g = _graph(name, batch)
    prof = run_profiling(g, _MACHINE)
    results = {}
    for label, prune, inc in (("exhaustive", False, False),
                              ("optimized", True, True)):
        cfg = PoochConfig(prune=prune, incremental=inc)
        clf = PoochClassifier(g, prof, _MACHINE, config=cfg)
        cls, stats = clf.classify()
        out = clf.predictor.predict(cls)
        results[label] = (cls.key(), out.time, out.peak_memory,
                          clf.predictor.simulations)
    ex, opt = results["exhaustive"], results["optimized"]
    assert opt[:3] == ex[:3], f"plans differ: {ex} vs {opt}"


def test_incremental_resumes_and_stats_populated():
    g = _graph("resnet18", 4)
    prof = run_profiling(g, _MACHINE)
    clf = PoochClassifier(g, prof, _MACHINE, config=PoochConfig())
    _cls, stats = clf.classify()
    assert stats.wall_time_s > 0.0
    assert stats.leaves_total >= stats.leaves_evaluated > 0
    assert stats.sims_full + stats.sims_resumed == clf.predictor.simulations
    # prefix sharing must actually fire: sibling candidates differ in a
    # handful of maps, so most replays resume
    assert stats.sims_resumed > stats.sims_full


def test_incremental_counters_do_not_change_budget():
    """`simulations` (the budget meter) counts resumed replays exactly like
    full ones, so budget truncation is incremental-independent."""
    g = _graph("small_cnn", 8)
    prof = run_profiling(g, _MACHINE)
    counts = {}
    for inc in (False, True):
        cfg = PoochConfig(incremental=inc, step1_sim_budget=40)
        clf = PoochClassifier(g, prof, _MACHINE, config=cfg)
        cls, stats = clf.classify()
        counts[inc] = (clf.predictor.simulations, cls.key())
    assert counts[False] == counts[True]


class _FakeBounds:
    """Synthetic bounds: subtrees committing map 0 to SWAP are unbeatable."""

    def __init__(self, poison: int, incumbent: float) -> None:
        self.poison = poison
        self.incumbent = incumbent

    def lower_bound(self, committed) -> float:
        return self.incumbent + 1.0 if self.poison in committed else 0.0


def test_leaf_cursor_prunes_poisoned_subtree():
    exact = [0, 1, 2]
    # keep-first DFS enumeration over {0,1,2}
    leaves = []
    for d0 in (True, False):
        for d1 in (True, False):
            for d2 in (True, False):
                leaves.append(tuple(
                    m for m, dec in zip(exact, (d0, d1, d2)) if dec
                ))
    stats = SearchStats()
    cursor = _LeafCursor(leaves, exact, _FakeBounds(0, 1.0), stats)
    seen = []
    while True:
        nxt = cursor.next(best_time=1.0)
        if nxt is None:
            break
        seen.append(nxt[1])
    # every surviving leaf keeps map 0; the swap-0 half of the tree is one
    # pruned subtree of four leaves
    assert all(0 in leaf for leaf in seen)
    assert len(seen) == 4
    assert stats.subtrees_pruned == 1
    assert stats.leaves_pruned == 4


def test_no_prune_cursor_visits_everything():
    exact = [0, 1]
    leaves = [(0, 1), (0,), (1,), ()]
    stats = SearchStats()
    cursor = _LeafCursor(leaves, exact, None, stats)
    seen = []
    while True:
        nxt = cursor.next(best_time=-1.0)  # incumbent beats every bound
        if nxt is None:
            break
        seen.append(nxt[1])
    assert seen == leaves
    assert stats.subtrees_pruned == 0


def test_prune_knob_is_in_plan_signature_incremental_is_not():
    base = PoochConfig()
    assert PoochConfig(prune=False).signature() != base.signature()
    assert PoochConfig(incremental=False).signature() == base.signature()
    assert PoochConfig(workers=4).signature() == base.signature()


def test_plan_cache_misses_across_prune_setting(tmp_path):
    from repro.runtime.plan_io import PlanCache

    g = small_cnn(4)
    cache = PlanCache(tmp_path)
    cls = Classification.all_swap(g)
    on, off = PoochConfig(prune=True), PoochConfig(prune=False)
    cache.store_plan(g, X86_V100, on.signature(), cls, predicted_time=1.0)
    assert cache.load_plan(g, X86_V100, on.signature()) is not None
    assert cache.load_plan(g, X86_V100, off.signature()) is None
