"""Host-memory limits: swap space is bounded by CPU DRAM (the paper's
Tables 1/2 list 192 GB vs 1 TB for a reason)."""

import pytest
from dataclasses import replace

from repro.common.errors import OutOfMemoryError
from repro.common.units import GB, MiB
from repro.models import poster_example
from repro.runtime import Classification, execute
from tests.conftest import tiny_machine


class TestHostCapacity:
    def test_swap_needs_host_space(self):
        """All-swap with a host smaller than the feature maps fails in the
        host pool."""
        g = poster_example()  # ~288 MiB of feature maps
        m = replace(tiny_machine(mem_mib=224), cpu_mem_capacity=64 * MiB)
        with pytest.raises(OutOfMemoryError, match="host"):
            execute(g, Classification.all_swap(g), m)

    def test_ample_host_is_fine(self):
        g = poster_example()
        m = replace(tiny_machine(mem_mib=224), cpu_mem_capacity=4 * GB)
        r = execute(g, Classification.all_swap(g), m)
        assert 0 < r.host_peak <= 4 * GB

    def test_keep_plan_uses_no_host(self):
        from repro.hw import X86_V100
        g = poster_example()
        r = execute(g, Classification.all_keep(g), X86_V100)
        assert r.host_peak == 0

    def test_recompute_host_usage_is_input_only(self):
        # all_recompute falls back to SWAP for the (non-recomputable) input
        # batch, which is the only map that should touch host memory
        from repro.hw import X86_V100
        g = poster_example()
        r = execute(g, Classification.all_recompute(g), X86_V100)
        assert 0 < r.host_peak <= g[0].out_spec.nbytes * 1.01

    def test_host_usage_bounded_by_swapped_bytes(self):
        from repro.hw import X86_V100
        g = poster_example()
        r = execute(g, Classification.all_swap(g), X86_V100)
        swapped = sum(g[i].out_spec.nbytes for i in g.classifiable_maps())
        assert r.host_peak <= swapped * 1.01
