"""Model zoo: structure, parameter counts, memory scale vs the paper."""

import pytest

from repro.common.errors import GraphError
from repro.common.units import GiB
from repro.graph.ops import OpKind
from repro.models import (
    MODEL_ZOO,
    alexnet,
    build_model,
    googlenet,
    linear_chain,
    mlp,
    poster_example,
    resnet18,
    resnet50,
    resnext50_32x4d,
    resnext101_3d,
    small_cnn,
    vgg16,
)


class TestResNet50:
    def test_classifiable_map_count_matches_paper_scale(self):
        # the paper's Table 3 classifies 105 feature maps for ResNet-50
        g = resnet50(512)
        assert 100 <= len(g.classifiable_maps()) <= 112

    def test_param_count(self):
        # ResNet-50 has ~25.6M parameters -> ~97.7 MiB in fp32
        g = resnet50(1)
        n_params = g.total_param_bytes / 4
        assert 24e6 < n_params < 27e6

    def test_memory_at_640_exceeds_50gb(self):
        # Fig. 3: "memory usage ... exceeds 50 GB with the batch size of 640"
        g = resnet50(640)
        assert g.training_memory_bytes() > 47 * GiB

    def test_memory_at_128_fits_16gb(self):
        g = resnet50(128)
        assert g.training_memory_bytes() < 15 * GiB

    def test_memory_at_256_exceeds_16gb(self):
        # Fig. 17: in-core fails from batch 256
        g = resnet50(256)
        assert g.training_memory_bytes() > 16 * GiB

    def test_memory_linear_in_batch(self):
        m1 = resnet50(128).training_memory_bytes()
        m2 = resnet50(256).training_memory_bytes()
        # feature maps dominate and scale linearly
        assert m2 / m1 == pytest.approx(2.0, rel=0.1)

    def test_flops_per_image(self):
        # ResNet-50 is ~4.1 GMACs per 224x224 image; our convention counts
        # multiply and add separately (matching the V100's FMA=2 peak), so
        # ~8.2 GFLOPs forward per image
        g = resnet50(8)
        per_image = g.total_fwd_flops / 8
        assert 7.0e9 < per_image < 9.5e9

    def test_depths(self):
        assert len(resnet18(2)) < len(resnet50(2))

    def test_invalid_depth(self):
        from repro.models.resnet import resnet
        with pytest.raises(GraphError):
            resnet(42, 2)


class TestAlexNet:
    def test_structure(self):
        g = alexnet(4)
        kinds = {l.op.kind for l in g}
        assert OpKind.LRN in kinds and OpKind.DROPOUT in kinds
        assert sum(1 for l in g if l.op.kind is OpKind.CONV) == 5
        assert sum(1 for l in g if l.op.kind is OpKind.LINEAR) == 3

    def test_param_count(self):
        # ~61M parameters
        n = alexnet(1).total_param_bytes / 4
        assert 55e6 < n < 65e6

    def test_high_flops_per_activation_byte(self):
        # the property the paper leans on: AlexNet hides swaps easily
        a = alexnet(64)
        r = resnet50(64)
        a_ratio = a.total_fwd_flops / a.total_feature_bytes
        r_ratio = r.total_fwd_flops / r.total_feature_bytes
        assert a_ratio > 2 * r_ratio

    def test_no_dropout_variant(self):
        g = alexnet(4, with_dropout=False)
        assert all(l.op.kind is not OpKind.DROPOUT for l in g)


class TestResNext3D:
    def test_3d_shapes(self):
        g = resnext101_3d((16, 112, 112))
        assert g[0].out_spec.shape == (1, 3, 16, 112, 112)

    def test_feature_memory_scales_with_input_volume(self):
        # parameters are constant; activations scale with the input volume
        m1 = resnext101_3d((16, 112, 112)).total_feature_bytes
        m2 = resnext101_3d((32, 112, 112)).total_feature_bytes
        assert m2 > 1.8 * m1

    def test_exceeds_16gb_at_batch_1(self):
        # Fig. 4: memory blows past the GPU even at batch 1
        g = resnext101_3d((96, 512, 512))
        assert g.training_memory_bytes() > 16 * GiB

    def test_grouped_convs_present(self):
        g = resnext101_3d((16, 112, 112))
        assert any(
            l.op.kind is OpKind.CONV and l.op.attrs["groups"] == 32 for l in g
        )


class TestOtherModels:
    def test_vgg16_conv_count(self):
        g = vgg16(2)
        assert sum(1 for l in g if l.op.kind is OpKind.CONV) == 13

    def test_googlenet_has_concats(self):
        g = googlenet(2)
        assert sum(1 for l in g if l.op.kind is OpKind.CONCAT) == 9

    def test_googlenet_branches(self):
        g = googlenet(2)
        # at least one map fans out to 4 consumers (inception input)
        assert max(len(c) for c in g.consumers) >= 4

    def test_resnext50_grouped(self):
        g = resnext50_32x4d(2)
        assert any(
            l.op.kind is OpKind.CONV and l.op.attrs["groups"] == 32 for l in g
        )

    def test_toys_build(self):
        for g in (mlp(), small_cnn(), small_cnn(with_residual=True),
                  linear_chain(4), poster_example()):
            g.validate()

    def test_poster_example_is_8_conv_layers(self):
        g = poster_example()
        assert sum(1 for l in g if l.op.kind is OpKind.CONV) == 8


class TestZoo:
    def test_registry_builds_everything_small(self):
        for name in MODEL_ZOO:
            g = build_model(name, batch=2)
            g.validate()

    def test_resnext101_3d_special_case(self):
        g = build_model("resnext101_3d", batch=1, input_size=(16, 112, 112))
        g.validate()

    def test_unknown_model(self):
        with pytest.raises(GraphError, match="unknown model"):
            build_model("resnet9000", 2)
