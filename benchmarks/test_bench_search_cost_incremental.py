"""Search-cost extension, round 2: pruning + incremental prefix sharing.

The previous round (``test_bench_search_cost_parallel``) made each candidate
simulation cheap; this one makes most of them *shared*.  Two knobs:

* ``PoochConfig.incremental`` — candidate drafts are produced by patching
  the all-swap base schedule (cost proportional to the flipped maps, not
  schedule length) and their replays resume from checkpoints of sibling
  candidates wherever the schedules provably agree;
* ``PoochConfig.prune`` — step-1 subtrees whose admissible lower bound
  cannot beat the incumbent are skipped without simulating.

Both are exactly plan-preserving, which this benchmark re-asserts end-to-end
on the headline ResNet-50 (batch=256, x86) search before asserting the cost
claims: >=3x fewer full-leaf (from-t=0) simulations and a measurable wall
reduction versus the exhaustive ``--no-prune --no-incremental`` arm.

Machine-readable numbers go to ``benchmarks/results/BENCH_search.json``
(uploaded by the CI bench job's artifact step).
"""

import json
import time
from dataclasses import replace

from repro.hw import X86_V100
from repro.models import resnet50
from repro.pooch import PoocH, PoochConfig

from benchmarks.conftest import run_once

#: ample budget: neither arm truncates, so exhaustive and optimized searches
#: visit the same candidate set and equivalence is provable, not incidental
_CONFIG = PoochConfig(max_exact_li=8, step1_sim_budget=100_000)


def test_bench_search_cost_incremental(benchmark, report, results_dir):
    def run():
        t0 = time.perf_counter()
        off = PoocH(
            X86_V100, replace(_CONFIG, prune=False, incremental=False)
        ).optimize(resnet50(256))
        t_off = time.perf_counter() - t0
        t0 = time.perf_counter()
        opt = PoocH(X86_V100, _CONFIG).optimize(resnet50(256))
        t_opt = time.perf_counter() - t0
        return off, t_off, opt, t_opt

    off, t_off, opt, t_opt = run_once(benchmark, run)

    # exact equivalence first: same plan, prediction, and simulation budget
    assert opt.classification.key() == off.classification.key()
    assert opt.predicted.time == off.predicted.time
    assert opt.predicted.peak_memory == off.predicted.peak_memory
    assert (opt.stats.sims_step1 + opt.stats.sims_step2
            == off.stats.sims_step1 + off.stats.sims_step2
            + opt.stats.leaves_pruned)  # pruned leaves are never simulated

    sims_off = off.stats.sims_full + off.stats.sims_resumed
    sims_opt = opt.stats.sims_full + opt.stats.sims_resumed
    full_ratio = off.stats.sims_full / max(opt.stats.sims_full, 1)

    payload = {
        "model": "resnet50",
        "batch": 256,
        "machine": X86_V100.name,
        "exhaustive": {
            "wall_s": round(t_off, 3),
            "simulations": sims_off,
            "full": off.stats.sims_full,
            "resumed": off.stats.sims_resumed,
            "subtrees_pruned": off.stats.subtrees_pruned,
        },
        "optimized": {
            "wall_s": round(t_opt, 3),
            "simulations": sims_opt,
            "full": opt.stats.sims_full,
            "resumed": opt.stats.sims_resumed,
            "subtrees_pruned": opt.stats.subtrees_pruned,
            "leaves_pruned": opt.stats.leaves_pruned,
        },
        "full_simulation_ratio": round(full_ratio, 2),
        "wall_speedup": round(t_off / t_opt, 2),
        "plan_identical": True,
    }
    (results_dir / "BENCH_search.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    report(
        "extension_search_cost_incremental",
        "PoocH search cost with pruning + incremental replay, "
        "ResNet-50 (batch=256, x86):\n"
        f"  exhaustive (--no-prune --no-incremental): {t_off:.1f} s wall, "
        f"{off.stats.sims_full} full-leaf simulations\n"
        f"  pruned + incremental: {t_opt:.1f} s wall, "
        f"{opt.stats.sims_full} full + {opt.stats.sims_resumed} resumed "
        f"simulations, {opt.stats.subtrees_pruned} subtrees pruned\n"
        f"  full-simulation reduction: {full_ratio:.1f}x, wall "
        f"{t_off / t_opt:.2f}x, plan bit-identical",
    )

    # headline claims: >=3x fewer from-scratch replays, measurable wall win
    assert off.stats.sims_full == sims_off  # off arm never resumes
    assert full_ratio >= 3.0
    assert t_opt < t_off
