"""Search-cost extension, round 3: pruning + incremental sharing + lockstep
vectorization.

Round 1 (``test_bench_search_cost_parallel``) made candidate simulations
cheap, round 2 made most of them *shared*; this round batches them.  Knobs:

* ``PoochConfig.incremental`` — candidate drafts are produced by patching
  the all-swap base schedule (cost proportional to the flipped maps, not
  schedule length) and their replays resume from checkpoints of sibling
  candidates wherever the schedules provably agree;
* ``PoochConfig.prune`` — step-1 subtrees whose admissible lower bound
  cannot beat the incumbent are skipped without simulating;
* ``PoochConfig.incremental_step2`` — step-2 r(X) probes are recompute-delta
  drafts resumed from sibling checkpoints, r-values survive across rounds
  unless the accepted flip's perturbation window overlaps theirs, and keep
  probes whose draft liveness floor already exceeds capacity are answered
  "infeasible" without simulating at all;
* ``PoochConfig.vectorize`` — keep/swap candidates are simulated K at a
  time by the lockstep ``VectorEngine`` (speculatively batched along the
  step-1 greedy scans, directly batched for step-2 keep probes), with the
  event engines as fallback for everything else.

All are exactly plan-preserving, which this benchmark re-asserts end-to-end
on the headline ResNet-50 (batch=256, x86) search before asserting the cost
claims: >=3x fewer full-leaf (from-t=0) simulations in step 1 AND in step 2
for the incremental arm, plus a >=10x *wall* reduction from vectorization
on top of the incremental arm.

Profiling runs once and is shared by every arm, so ``wall_s`` is pure
search cost (the shared profiling wall is reported separately as
``profile_wall_s``).  Machine-readable numbers go to
``benchmarks/results/BENCH_search.json`` (uploaded by the CI bench job's
artifact step; the bench job prints the step-1 vs step-2 and
vectorized-vs-event breakdowns in the run log).
"""

import json
import time
from dataclasses import replace

from repro.hw import X86_V100
from repro.models import resnet50
from repro.pooch import PoocH, PoochConfig
from repro.runtime import run_profiling

from benchmarks.conftest import run_once

#: ample budget: no arm truncates, so all searches visit the same candidate
#: set and equivalence is provable, not incidental
_CONFIG = PoochConfig(max_exact_li=8, step1_sim_budget=100_000)


def test_bench_search_cost_incremental(benchmark, report, results_dir):
    def run():
        g = resnet50(256)
        t0 = time.perf_counter()
        profile = run_profiling(g, X86_V100)
        t_prof = time.perf_counter() - t0
        arms = {}
        for label, cfg in (
            ("exhaustive", replace(_CONFIG, prune=False, incremental=False,
                                   incremental_step2=False, vectorize=False)),
            ("optimized", replace(_CONFIG, vectorize=False)),
            ("vectorized", _CONFIG),
        ):
            t0 = time.perf_counter()
            result = PoocH(X86_V100, cfg).optimize(g, profile)
            arms[label] = (result, time.perf_counter() - t0)
        return t_prof, arms

    t_prof, arms = run_once(benchmark, run)
    off, t_off = arms["exhaustive"]
    opt, t_opt = arms["optimized"]
    vec, t_vec = arms["vectorized"]

    # exact equivalence first: same plan, prediction, and the same search
    # trajectory (flip sequence, rounds, first-round r-values) — for the
    # incremental arm AND the vectorized arm on top of it
    for cand in (opt, vec):
        assert cand.classification.key() == off.classification.key()
        assert cand.predicted.time == off.predicted.time
        assert cand.predicted.peak_memory == off.predicted.peak_memory
        assert cand.stats.flips_to_recompute == off.stats.flips_to_recompute
        assert cand.stats.step2_rounds == off.stats.step2_rounds
        assert cand.stats.r_values == off.stats.r_values
    # vectorization changes *how* candidates are simulated, never which:
    assert vec.stats.sims_step1 == opt.stats.sims_step1
    assert vec.stats.sims_step2 == opt.stats.sims_step2
    assert vec.stats.keep_probes_elided == opt.stats.keep_probes_elided
    # ... and every simulation is either a lockstep row or an event replay
    assert vec.stats.sims_vectorized > 0
    assert vec.stats.vector_sweeps > 0
    assert (vec.stats.sims_vectorized + vec.stats.sims_fallback
            == vec.stats.sims_step1 + vec.stats.sims_step2)
    # step 1: pruned leaves are never simulated, nothing else changes
    assert (opt.stats.sims_step1 + opt.stats.leaves_pruned
            == off.stats.sims_step1)
    # step 2: the exhaustive arm recomputes every r(X) every round and
    # simulates every probe; the incremental arm answers exactly that work
    # from fresh probes + reuse + liveness-floor elision
    assert off.stats.r_reused == 0
    assert off.stats.keep_probes_elided == 0
    assert (opt.stats.r_recomputed + opt.stats.r_reused
            == off.stats.r_recomputed)

    sims_off = off.stats.sims_full + off.stats.sims_resumed
    full_ratio = off.stats.sims_full / max(opt.stats.sims_full, 1)
    step2_ratio = (off.stats.sims_step2_full
                   / max(opt.stats.sims_step2_full, 1))
    vec_speedup = t_opt / t_vec

    def arm(result, wall):
        s = result.stats
        return {
            "wall_s": round(wall, 3),
            "simulations": s.sims_full + s.sims_resumed + s.sims_vectorized,
            "full": s.sims_full,
            "resumed": s.sims_resumed,
            "vectorized": s.sims_vectorized,
            "fallback": s.sims_fallback,
            "vector_sweeps": s.vector_sweeps,
            "vector_candidates": s.vector_candidates,
            "subtrees_pruned": s.subtrees_pruned,
            "step2": {
                "sims": s.sims_step2,
                "full": s.sims_step2_full,
                "resumed": s.sims_step2_resumed,
                "rounds": s.step2_rounds,
                "r_recomputed": s.r_recomputed,
                "r_reused": s.r_reused,
                "keep_elided": s.keep_probes_elided,
            },
        }

    payload = {
        "model": "resnet50",
        "batch": 256,
        "machine": X86_V100.name,
        "profile_wall_s": round(t_prof, 3),
        "exhaustive": arm(off, t_off),
        "optimized": {**arm(opt, t_opt),
                      "leaves_pruned": opt.stats.leaves_pruned},
        "vectorized": {**arm(vec, t_vec),
                       "leaves_pruned": vec.stats.leaves_pruned},
        "full_simulation_ratio": round(full_ratio, 2),
        "step2_full_simulation_ratio": round(step2_ratio, 2),
        "wall_speedup": round(t_off / t_opt, 2),
        "vectorized_wall_speedup": round(vec_speedup, 2),
        "plan_identical": True,
    }
    (results_dir / "BENCH_search.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    report(
        "extension_search_cost_incremental",
        "PoocH search cost with pruning + incremental replay + lockstep\n"
        "vectorization, ResNet-50 (batch=256, x86); walls are pure search "
        f"(shared profiling: {t_prof:.1f} s):\n"
        f"  exhaustive (all knobs off): {t_off:.1f} s wall, "
        f"{off.stats.sims_full} full-leaf simulations "
        f"({off.stats.sims_step2_full} in step 2)\n"
        f"  pruned + incremental: {t_opt:.1f} s wall, "
        f"{opt.stats.sims_full} full + {opt.stats.sims_resumed} resumed "
        f"simulations, {opt.stats.subtrees_pruned} subtrees pruned\n"
        f"  + vectorized: {t_vec:.1f} s wall, "
        f"{vec.stats.sims_vectorized} lockstep + "
        f"{vec.stats.sims_fallback} event-engine sims over "
        f"{vec.stats.vector_sweeps} sweeps "
        f"({vec.stats.vector_candidates} speculated rows)\n"
        f"  step 2: {opt.stats.step2_rounds} rounds, "
        f"{opt.stats.sims_step2_full} full + "
        f"{opt.stats.sims_step2_resumed} resumed sims, "
        f"{opt.stats.keep_probes_elided} keep probes elided, "
        f"r-values {opt.stats.r_recomputed} recomputed / "
        f"{opt.stats.r_reused} reused\n"
        f"  full-simulation reduction: {full_ratio:.1f}x overall, "
        f"{step2_ratio:.1f}x in step 2; wall {t_off / t_opt:.2f}x "
        f"(incremental), {vec_speedup:.2f}x more (vectorized); "
        f"plans bit-identical",
    )

    # headline claims: >=3x fewer from-scratch replays — overall and within
    # step 2 — plus a >=10x wall win from vectorization on top
    assert off.stats.sims_full == sims_off  # off arm never resumes
    assert full_ratio >= 3.0
    assert step2_ratio >= 3.0
    assert t_opt < t_off
    assert vec_speedup >= 10.0
