"""Table 3 — keep/swap/recompute counts for ResNet-50 (batch 512).

Paper (of 105 classifiable maps):

    | method               | #keep | #swap | #recomp |
    | PoocH (x86)          |  66   |  12   |   27    |
    | superneurons (x86)   |  66   |  21   |   18    |
    | PoocH (POWER9)       |  66   |  36   |    3    |
    | superneurons (POWER9)|  66   |  21   |   18    |

The two structural claims this benchmark asserts:
* PoocH picks **more recompute on the x86 machine than on POWER9** — the
  slower the interconnect, the more attractive recomputation;
* superneurons' type-based static classification is **identical on the two
  machines**.

(Our POWER9 keep-count is lower than the paper's: the idealized copy
pipeline hides NVLink swaps almost completely, so there is little overhead
for keeps to remove — see EXPERIMENTS.md.)
"""

from repro.analysis import Table
from repro.experiments import classification_table
from repro.hw import POWER9_V100, X86_V100
from repro.models import resnet50

from benchmarks.conftest import BENCH_CONFIG, run_once


def test_bench_table3_classification(benchmark, report):
    rows = run_once(
        benchmark,
        lambda: classification_table(
            "resnet50:batch=512", lambda: resnet50(512),
            (X86_V100, POWER9_V100), BENCH_CONFIG,
        ),
    )

    t = Table("Table 3: ResNet-50 (batch=512) classification counts",
              ["method", "machine", "#keep", "#swap", "#recomp"])
    for r in rows:
        t.add(r.method, r.machine, r.keep, r.swap, r.recompute)
    report("table3_classification", t.render())

    by = {(r.method, r.machine): r for r in rows}
    pooch_x86 = by[("PoocH", "x86")]
    pooch_p9 = by[("PoocH", "power9")]
    sn_x86 = by[("superneurons", "x86")]
    sn_p9 = by[("superneurons", "power9")]

    # total classified maps ≈ the paper's 105
    total = pooch_x86.keep + pooch_x86.swap + pooch_x86.recompute
    assert 100 <= total <= 112

    # claim 1: recompute count is machine-sensitive, larger on the slow link
    assert pooch_x86.recompute > pooch_p9.recompute
    assert pooch_x86.recompute >= 10  # the paper's 27-recompute scale

    # claim 2: superneurons is machine-blind
    assert (sn_x86.keep, sn_x86.swap, sn_x86.recompute) == (
        sn_p9.keep, sn_p9.swap, sn_p9.recompute
    )

    # PoocH on x86 keeps a comparable share to superneurons (paper: both 66)
    assert abs(pooch_x86.keep - sn_x86.keep) <= 20
