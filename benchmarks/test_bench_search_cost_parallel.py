"""Search-cost extension: fast replay engine + parallel search.

Before this optimization the recorded wall cost of the ResNet-50
(batch=256, x86) search was 13.2 s for 884 timeline simulations (see the
git history of ``benchmarks/results/extension_search_cost.txt``).  Two
changes attack it:

* the predictor replays schedule *drafts* through
  :class:`~repro.gpusim.fastengine.FastEngine` instead of finalising and
  validating a full schedule per candidate — a >2x per-simulation saving
  independent of core count;
* ``PoochConfig.workers`` fans simulations over a process pool, with the
  parent replaying worker outcomes in serial order so the chosen plan and
  every statistic are bit-identical to ``workers=1`` (DESIGN.md §5).

This benchmark measures both, re-asserts the serial/parallel identity
end-to-end on the full workload, and requires >=2x total reduction against
the recorded baseline.  On a single-core host the pool cannot add speedup
(it only pays fork/pickle overhead), so the parallel-beats-serial assertion
is gated on the visible CPU count; the >=2x reduction must hold either way.
"""

import os
import time
from dataclasses import replace

from repro.hw import X86_V100
from repro.models import resnet50
from repro.pooch import PoocH

from benchmarks.conftest import BENCH_CONFIG, run_once

#: recorded before the draft-replay engine (PR "search cost" git history)
BASELINE_WALL_S = 13.2
BASELINE_SIMS = 884


def test_bench_search_cost_parallel(benchmark, report):
    def run():
        g = resnet50(256)
        t0 = time.perf_counter()
        serial = PoocH(X86_V100, BENCH_CONFIG).optimize(g)
        t_serial = time.perf_counter() - t0
        t0 = time.perf_counter()
        par = PoocH(
            X86_V100, replace(BENCH_CONFIG, workers=2)
        ).optimize(resnet50(256))
        t_par = time.perf_counter() - t0
        return serial, t_serial, par, t_par

    serial, t_serial, par, t_par = run_once(benchmark, run)

    sims = serial.stats.sims_step1 + serial.stats.sims_step2
    cores = os.cpu_count() or 1
    best = min(t_serial, t_par)
    report(
        "extension_search_cost",
        "PoocH search cost, ResNet-50 (batch=256, x86), "
        f"{sims} timeline simulations "
        f"({serial.stats.sims_step1} step-1 + {serial.stats.sims_step2} "
        "step-2):\n"
        f"  pre-optimization baseline (recorded): {BASELINE_WALL_S:.1f} s "
        f"wall, {BASELINE_SIMS} simulations\n"
        f"  draft-replay engine, workers=1: {t_serial:.1f} s wall "
        f"({BASELINE_WALL_S / t_serial:.1f}x vs baseline)\n"
        f"  draft-replay engine, workers=2: {t_par:.1f} s wall "
        f"({BASELINE_WALL_S / t_par:.1f}x vs baseline; host has "
        f"{cores} CPU{'s' if cores != 1 else ''}), plan identical to serial",
    )

    # workers is a pure wall-clock knob: same plan, same simulation counts
    assert par.classification.key() == serial.classification.key()
    assert par.stats.sims_step1 == serial.stats.sims_step1
    assert par.stats.sims_step2 == serial.stats.sims_step2
    assert par.predicted.time == serial.predicted.time
    assert sims > 0

    # the headline claim: >=2x cheaper than the recorded baseline search
    assert best <= BASELINE_WALL_S / 2
    if cores >= 2:
        # with real parallelism the pool must also beat the serial run
        assert t_par <= BASELINE_WALL_S / 2
    # the paper's amortisation argument needs minutes, not hours
    assert best < 240
