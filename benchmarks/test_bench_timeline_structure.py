"""Figs. 2, 7, 10, 11, 13, 14 — the worked timeline example.

The paper develops PoocH on an 8-layer example: Fig. 2 the dense in-core
timeline, Fig. 7 the idle regions swap-all introduces, Fig. 10 the swap-in
move-up, Figs. 11/13 the un-hidden swap sets L_O/L_I (with L_O clustering at
the *end* of forward) and the keep-from-the-back reduction.  This benchmark
reconstructs all of those structures on the 8-layer poster network scaled to
out-of-core-relevant size on the x86 machine, and renders the actual ASCII
timelines into the results directory.
"""

from repro.analysis import render_timeline, total_idle
from repro.baselines import plan_swap_all, plan_swap_all_unscheduled
from repro.gpusim import StreamName
from repro.hw import X86_V100
from repro.models import poster_example
from repro.pooch import analyze_overlap
from repro.runtime import Classification, MapClass, execute, run_profiling

from benchmarks.conftest import run_once

BATCH = 2048  # ~1 GiB per feature map: swaps are expensive on PCIe


def test_bench_timeline_structure(benchmark, report):
    g = poster_example(batch=BATCH)

    def run():
        incore = execute(g, Classification.all_keep(g), X86_V100)
        naive = plan_swap_all_unscheduled(g).execute(g, X86_V100)
        eager = plan_swap_all(g).execute(g, X86_V100)
        profile = run_profiling(g, X86_V100)
        overlap = analyze_overlap(profile.baseline)
        return incore, naive, eager, profile, overlap

    incore, naive, eager, profile, overlap = run_once(benchmark, run)

    art = [
        "== Fig. 2: in-core timeline (no swapping) ==",
        render_timeline(incore, width=110),
        "",
        "== Fig. 7: swap-all without swap-in scheduling (note compute idle) ==",
        render_timeline(naive, width=110),
        "",
        "== Fig. 10 (right): swap-all with eager swap-in scheduling ==",
        render_timeline(eager, width=110),
        "",
        f"== Fig. 11: un-hidden swap sets ==\n{overlap.describe()}",
    ]
    report("fig02_07_10_11_timelines", "\n".join(art))

    # Fig. 2: in-core compute is dense (negligible idle)
    assert total_idle(incore, StreamName.COMPUTE) < 0.02 * incore.makespan

    # Fig. 7: swapping introduces real compute idle
    naive_idle = total_idle(naive, StreamName.COMPUTE)
    assert naive_idle > 0.05 * naive.makespan
    assert naive.makespan > 1.2 * incore.makespan

    # Fig. 10: moving swap-ins up reduces the iteration time
    assert eager.makespan <= naive.makespan

    # Fig. 11: both L_O and L_I are non-empty under PCIe pressure
    assert overlap.L_O and overlap.L_I

    # Fig. 13: un-hidden swap-outs cluster at the end of forward — the
    # highest-index conv layers dominate L_O
    convs = [i for i in g.classifiable_maps()]
    top_half = set(convs[len(convs) // 2:])
    assert len(overlap.L_O & top_half) >= len(overlap.L_O) / 2

    # Fig. 13 (right): keeping maps from the output layer backwards removes
    # trailing swap-out overhead
    keeps = sorted(overlap.L_O)[-2:]
    cls = Classification.all_swap(g).with_classes(
        {m: MapClass.KEEP for m in keeps}
    )
    reduced = execute(g, cls, X86_V100)
    assert reduced.makespan < eager.makespan
