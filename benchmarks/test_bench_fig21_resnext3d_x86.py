"""Fig. 21 — 3D-ResNeXt-101 throughput vs input size on the x86 machine.

Paper: with batch fixed at 1, the 3D input volume is swept past GPU memory;
3D convolutions are so compute-heavy that swaps hide well — PoocH degrades
less than 10 % vs in-core and stays ahead of superneurons.  Throughput is
reported as clips/s (batch 1), normalised per input volume in the table.
"""

from repro.experiments import performance_sweep
from repro.hw import X86_V100
from repro.models import resnext101_3d

from benchmarks.conftest import BENCH_CONFIG, run_once, sweep_table

SIZES = [
    ("64x448x448", 1, lambda: resnext101_3d((64, 448, 448))),   # ~13 GiB: in-core
    ("96x512x512", 1, lambda: resnext101_3d((96, 512, 512))),   # ~26 GiB
    ("112x576x576", 1, lambda: resnext101_3d((112, 576, 576))),  # ~38 GiB
]

#: relative input volumes (T*H*W) for per-voxel rate comparisons
VOLUME = {
    "64x448x448": 64 * 448 * 448,
    "96x512x512": 96 * 512 * 512,
    "112x576x576": 112 * 576 * 576,
}


def test_bench_fig21_resnext3d_x86(benchmark, report):
    rows = run_once(
        benchmark,
        lambda: performance_sweep(
            "resnext3d", SIZES, X86_V100,
            methods=("in-core", "superneurons", "pooch"),
            config=BENCH_CONFIG,
        ),
    )
    report("fig21_resnext3d_x86",
           sweep_table("Fig. 21: ResNeXt-101 (3D) on x86 (clips/s, batch=1)",
                       rows))

    by = {(r.method, r.size_label): r for r in rows}
    assert by[("in-core", "64x448x448")].ok
    assert not by[("in-core", "96x512x512")].ok
    assert by[("pooch", "96x512x512")].ok
    assert by[("pooch", "112x576x576")].ok

    # per-voxel processing rate of out-of-core PoocH within ~15 % of in-core
    # (paper: < 10 % absolute degradation)
    incore = by[("in-core", "64x448x448")]
    incore_rate = incore.images_per_second * VOLUME["64x448x448"]
    for label in ("96x512x512", "112x576x576"):
        pooch_rate = by[("pooch", label)].images_per_second * VOLUME[label]
        assert pooch_rate > 0.85 * incore_rate

    # PoocH at least matches superneurons
    for label in ("96x512x512", "112x576x576"):
        sn = by[("superneurons", label)]
        if sn.ok:
            assert (by[("pooch", label)].images_per_second
                    >= sn.images_per_second * 0.999)
