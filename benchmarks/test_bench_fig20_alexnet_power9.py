"""Fig. 20 — AlexNet throughput vs batch size on the POWER9 machine.

Paper: same story as Fig. 19 but even milder — with NVLink *and* heavy
convolutions, out-of-core AlexNet runs at essentially in-core speed.
"""

from repro.experiments import performance_sweep
from repro.hw import POWER9_V100
from repro.models import alexnet

from benchmarks.conftest import BENCH_CONFIG, run_once, sweep_table

BATCHES = (1024, 2048, 2560, 3072)
SIZES = [(f"batch={b}", b, (lambda b=b: alexnet(b))) for b in BATCHES]


def test_bench_fig20_alexnet_power9(benchmark, report):
    rows = run_once(
        benchmark,
        lambda: performance_sweep(
            "alexnet", SIZES, POWER9_V100,
            methods=("in-core", "superneurons", "pooch"),
            config=BENCH_CONFIG,
        ),
    )
    report("fig20_alexnet_power9",
           sweep_table("Fig. 20: AlexNet on POWER9 (#images/s)", rows))

    by = {(r.method, r.size_label): r for r in rows}
    assert by[("in-core", "batch=1024")].ok
    assert not by[("in-core", "batch=3072")].ok
    assert by[("pooch", "batch=3072")].ok

    incore_rate = by[("in-core", "batch=2048")].images_per_second
    pooch_rate = by[("pooch", "batch=3072")].images_per_second
    # ≤ ~10 % degradation (paper: ≤ 6.1 % on x86, even less here)
    assert pooch_rate > 0.9 * incore_rate

    sn = by[("superneurons", "batch=3072")]
    if sn.ok:
        assert pooch_rate >= sn.images_per_second * 0.95
