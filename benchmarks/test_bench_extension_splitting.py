"""Extension — ooc_cuDNN-style layer splitting (the §6 integration).

A single-layer working set beyond GPU memory defeats every whole-map
classification; splitting the layer into batch tiles brings it back into
PoocH's reach.  This benchmark measures the enablement and its price on a
ResNet-50-scale fat layer.
"""

from repro.analysis import Table
from repro.common.errors import OutOfMemoryError
from repro.common.units import GB, GiB, MiB
from repro.graph import GraphBuilder, max_layer_working_set, split_batch
from repro.hw import MachineSpec
from repro.pooch import PoocH, PoochConfig
from repro.runtime import Classification, execute

from benchmarks.conftest import run_once


def fat_net(batch=64, channels=128, image=64):
    b = GraphBuilder("fatnet")
    x = b.input((batch, 3, image, image))
    h = b.conv(x, channels, ksize=3, pad=1, activation="relu", name="fat")
    h = b.global_avg_pool(h, name="pool")
    h = b.linear(h, 10, name="head")
    b.loss(h)
    return b.build()


def test_bench_extension_layer_splitting(benchmark, report):
    graph = fat_net()
    need, _ = max_layer_working_set(graph)
    machine = MachineSpec(
        name="small-gpu", cpu="host",
        gpu_mem_capacity=int(need * 0.85),
        gpu_mem_reserved=4 * MiB,
        cpu_mem_capacity=64 * GB,
    )

    def run():
        rows = []
        try:
            execute(graph, Classification.all_swap(graph), machine)
            rows.append(("unsplit all-swap", "runs (unexpected)"))
        except OutOfMemoryError:
            rows.append(("unsplit all-swap", "FAIL (single-layer transient)"))
        for parts in (2, 4, 8):
            split = split_batch(graph, "fat", parts)
            res = PoocH(machine, PoochConfig(step1_sim_budget=200)
                        ).optimize(split)
            t = res.execute()
            rows.append((f"split x{parts} + PoocH",
                         f"{t.makespan * 1e3:.2f} ms/iter, peak "
                         f"{t.device_peak / GiB:.2f} GiB"))
        return rows

    rows = run_once(benchmark, run)
    t = Table("Extension: layer splitting on a GPU smaller than one layer",
              ["configuration", "outcome"])
    for name, outcome in rows:
        t.add(name, outcome)
    report("extension_layer_splitting", t.render())

    assert "FAIL" in rows[0][1]
    assert all("ms/iter" in outcome for _, outcome in rows[1:])
