"""Fig. 18 — ResNet-50 throughput vs batch size on the POWER9 machine.

Paper: NVLink shrinks the swap overhead, so PoocH's degradation vs in-core is
only 2-28 % (vs 13-38 % on x86), and PoocH still leads superneurons.
"""

from repro.experiments import performance_sweep
from repro.hw import POWER9_V100
from repro.models import resnet50

from benchmarks.conftest import BENCH_CONFIG, run_once, sweep_table

SIZES = [(f"batch={b}", b, (lambda b=b: resnet50(b)))
         for b in (128, 256, 384, 512, 640)]


def test_bench_fig18_resnet50_power9(benchmark, report):
    rows = run_once(
        benchmark,
        lambda: performance_sweep(
            "resnet50", SIZES, POWER9_V100,
            methods=("in-core", "superneurons", "pooch"),
            config=BENCH_CONFIG,
        ),
    )
    report("fig18_resnet50_power9",
           sweep_table("Fig. 18: ResNet-50 on POWER9 (#images/s)", rows))

    by = {(r.method, r.size_label): r for r in rows}

    assert by[("in-core", "batch=128")].ok
    for b in (256, 384, 512, 640):
        assert not by[("in-core", f"batch={b}")].ok
        assert by[("pooch", f"batch={b}")].ok

    # degradation vs in-core bounded by the paper's 28 % (+ slack)
    incore = by[("in-core", "batch=128")].images_per_second
    for b in (256, 384, 512, 640):
        pooch = by[("pooch", f"batch={b}")].images_per_second
        assert pooch > 0.65 * incore

    # PoocH at least matches superneurons on every out-of-core size
    for b in (256, 384, 512, 640):
        sn = by[("superneurons", f"batch={b}")]
        if sn.ok:
            assert (by[("pooch", f"batch={b}")].images_per_second
                    >= sn.images_per_second * 0.999)


def test_bench_fig17_vs_fig18_degradation(benchmark, report):
    """Cross-figure claim: degradation is smaller on POWER9 than on x86
    (uses the searches cached by the two sweep benchmarks)."""
    from repro.experiments import optimize_cached
    from repro.hw import X86_V100
    from repro.runtime import images_per_second

    def run():
        build = lambda: resnet50(512)
        x86 = optimize_cached("resnet50:batch=512", build, X86_V100,
                              BENCH_CONFIG)
        p9 = optimize_cached("resnet50:batch=512", build, POWER9_V100,
                             BENCH_CONFIG)
        return (images_per_second(x86.execute(X86_V100), 512),
                images_per_second(p9.execute(POWER9_V100), 512))

    x86_ips, p9_ips = run_once(benchmark, run)
    report("fig17_vs_fig18_degradation",
           f"PoocH ResNet-50 b512: x86 {x86_ips:.1f} img/s, "
           f"POWER9 {p9_ips:.1f} img/s")
    assert p9_ips > x86_ips  # faster interconnect, faster out-of-core training
