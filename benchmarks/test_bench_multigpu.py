"""Multi-GPU contention vs interleaved swap windows (ISSUE 9 acceptance).

Data-parallel out-of-core replicas all run the same plan, so with N devices
on one host link every swap window is requested N times at the same instant
— the naive synchronized scenario.  The KARMA-style stagger planner offsets
each replica's start so the windows interleave instead of queueing.

This benchmark takes the PoocH plan for ResNet-50 (batch=256, x86 — the
search is shared with the Fig. 15/17/Table 3 benchmarks via the experiment
cache), executes it once as ground truth, and simulates N ∈ {1, 2, 4}
replicas both ways.  Asserted shape claims:

* N=1 through the multi-device path is *bit-identical* to the single-device
  engine (no arbitration artifacts, no allreduce term);
* for N >= 2 the interleaved (staggered) plan strictly beats the naive
  synchronized plan's simulated makespan.

Machine-readable numbers go to ``benchmarks/results/BENCH_multigpu.json``
(uploaded by the CI bench job's artifact step).
"""

import json

from repro.analysis import Table
from repro.experiments.cache import optimize_cached
from repro.hw import X86_V100, multi_gpu
from repro.models import resnet50
from repro.pooch import plan_staggered

from benchmarks.conftest import BENCH_CONFIG, run_once

DEVICE_COUNTS = (1, 2, 4)


def test_bench_multigpu_stagger(benchmark, report, results_dir):
    def run():
        result = optimize_cached("resnet50_b256", lambda: resnet50(256),
                                 X86_V100, BENCH_CONFIG)
        base = result.execute()
        grad_bytes = result.grad_bytes()
        plans = {}
        for n in DEVICE_COUNTS:
            machine = multi_gpu(X86_V100, n)
            plans[n] = plan_staggered(base, machine, grad_bytes=grad_bytes)
        return base, plans

    base, plans = run_once(benchmark, run)

    # N=1 must pass through the arbiter bit-identically: same makespan, no
    # contention, no gradient exchange
    single = plans[1]
    assert single.naive.makespan == base.makespan  # exact, never approx
    assert single.chosen.makespan == base.makespan
    assert single.naive.contention_delay_total == 0.0
    assert single.naive.allreduce_time == 0.0

    rows = []
    for n in DEVICE_COUNTS:
        p = plans[n]
        rows.append({
            "devices": n,
            "naive_makespan_ms": round(p.naive.makespan * 1e3, 4),
            "staggered_makespan_ms": round(p.chosen.makespan * 1e3, 4),
            "naive_contention_ms": round(
                p.naive.contention_delay_total * 1e3, 4),
            "staggered_contention_ms": round(
                p.chosen.contention_delay_total * 1e3, 4),
            "allreduce_ms": round(p.chosen.allreduce_time * 1e3, 4),
            "stagger_ms": [round(s * 1e3, 4) for s in p.stagger],
            "candidates": p.candidates_evaluated,
            "speedup": round(p.naive.makespan / p.chosen.makespan, 4),
            "aggregate_img_s": round(n * 256 / p.chosen.makespan, 1),
        })

    payload = {
        "model": "resnet50",
        "batch": 256,
        "machine": X86_V100.name,
        "base_makespan_ms": round(base.makespan * 1e3, 4),
        "rows": rows,
    }
    (results_dir / "BENCH_multigpu.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    t = Table(
        "multi-GPU swap-window interleaving, ResNet-50 (batch=256, x86), "
        "PoocH plan replicated per device",
        ["devices", "naive (ms)", "staggered (ms)", "speedup",
         "contention cut (ms)", "allreduce (ms)", "agg img/s"],
    )
    for r in rows:
        t.add(
            r["devices"],
            f"{r['naive_makespan_ms']:.2f}",
            f"{r['staggered_makespan_ms']:.2f}",
            f"{r['speedup']:.3f}x",
            f"{r['naive_contention_ms'] - r['staggered_contention_ms']:.2f}",
            f"{r['allreduce_ms']:.2f}",
            f"{r['aggregate_img_s']:.1f}",
        )
    report("extension_multigpu", t.render())

    # headline claim: interleaving strictly beats synchronized contention
    # on every multi-device count
    for n in DEVICE_COUNTS:
        if n == 1:
            continue
        p = plans[n]
        assert p.chosen.makespan < p.naive.makespan, (
            f"stagger did not beat naive contention at N={n}")
        assert any(s > 0 for s in p.stagger)
        # interleaving must also remove real queueing, not just shift it
        assert (p.chosen.contention_delay_total
                < p.naive.contention_delay_total)
