"""Fig. 19 — AlexNet throughput vs batch size on the x86 machine.

Paper: AlexNet's heavy convolutions hide the swap traffic, so PoocH degrades
less than 6.1 % vs in-core even out-of-core, recomputation is rarely chosen,
and the PoocH-superneurons gap is small.
"""

from repro.experiments import optimize_cached, performance_sweep
from repro.hw import X86_V100
from repro.models import alexnet
from repro.runtime import MapClass

from benchmarks.conftest import BENCH_CONFIG, run_once, sweep_table

BATCHES = (1024, 2048, 2560, 3072)
SIZES = [(f"batch={b}", b, (lambda b=b: alexnet(b))) for b in BATCHES]


def test_bench_fig19_alexnet_x86(benchmark, report):
    rows = run_once(
        benchmark,
        lambda: performance_sweep(
            "alexnet", SIZES, X86_V100,
            methods=("in-core", "superneurons", "pooch"),
            config=BENCH_CONFIG,
        ),
    )
    report("fig19_alexnet_x86",
           sweep_table("Fig. 19: AlexNet on x86 (#images/s)", rows))

    by = {(r.method, r.size_label): r for r in rows}

    # in-core fits up to ~2.5k images, fails at 3072 (~18.5 GiB)
    assert by[("in-core", "batch=1024")].ok
    assert not by[("in-core", "batch=3072")].ok
    assert by[("pooch", "batch=3072")].ok

    # per-image throughput of out-of-core PoocH stays within ~25 % of the
    # in-core rate.  (The paper reports ≤ 6.1 %; our cost model makes
    # AlexNet's giant early LRN/pool maps — 6.6 GiB at batch 3072 — costlier
    # to hide than the real machine did, see EXPERIMENTS.md.)
    incore_rate = by[("in-core", "batch=2048")].images_per_second
    pooch_rate = by[("pooch", "batch=3072")].images_per_second
    assert pooch_rate > 0.75 * incore_rate

    # superneurons is competitive here (paper: small difference)
    sn = by[("superneurons", "batch=3072")]
    if sn.ok:
        assert pooch_rate >= sn.images_per_second * 0.95

    # recomputation is rarely chosen for AlexNet (paper)
    res = optimize_cached("alexnet:batch=3072", lambda: alexnet(3072),
                          X86_V100, BENCH_CONFIG)
    counts = res.classification.counts()
    assert counts[MapClass.RECOMPUTE] <= counts[MapClass.SWAP] + counts[MapClass.KEEP]
