"""Fig. 16 — contribution of each optimization, POWER9 machine.

Paper: PoocH is still best, but the gaps between swap-opt and PoocH are small
compared to the x86 figure — NVLink makes data-swapping cheap, so there is
little overhead for the classification (and especially the recompute step)
to remove.  Our idealized copy pipeline pushes that logic to its limit: the
swap-all baseline is already close to optimal on NVLink (see EXPERIMENTS.md
for the paper-vs-measured discussion).
"""

from repro.analysis import Table
from repro.experiments import ablation_rows
from repro.hw import POWER9_V100
from repro.models import alexnet, resnet50, resnext101_3d

from benchmarks.conftest import BENCH_CONFIG, run_once

WORKLOADS = [
    ("resnet50_b512", lambda: resnet50(512), 512),
    ("alexnet_b3072", lambda: alexnet(3072), 3072),
    ("resnext3d_96x512x512", lambda: resnext101_3d((96, 512, 512)), 1),
]


def test_bench_fig16_ablation_power9(benchmark, report):
    def run():
        return {
            key: ablation_rows(key, build, batch, POWER9_V100, BENCH_CONFIG)
            for key, build, batch in WORKLOADS
        }

    results = run_once(benchmark, run)

    t = Table("Fig. 16: per-optimization speedup on POWER9 "
              "(relative to swap-all w/o scheduling)",
              ["model", "method", "img/s", "speedup"])
    for key, rows in results.items():
        for r in rows:
            t.add(key, r.method,
                  r.images_per_second if r.images_per_second else "FAIL",
                  r.speedup if r.speedup else "-")
    report("fig16_ablation_power9", t.render())

    for key, rows in results.items():
        by = {r.method: r for r in rows}
        assert by["swap-all(w/o scheduling)"].ok
        assert by["pooch"].speedup >= by["swap-all"].speedup * 0.999
        # the paper's headline for this figure: swap-opt ≈ PoocH on NVLink
        assert by["pooch"].speedup <= by["swap-opt"].speedup * 1.15

    # cross-figure claim: the x86 classification gains exceed the POWER9
    # ones for ResNet-50 (compare with Fig. 15 via the shared cache)
    from repro.experiments import ablation_rows as ar
    from repro.hw import X86_V100
    x86_rows = {r.method: r for r in ar("resnet50_b512", lambda: resnet50(512),
                                        512, X86_V100, BENCH_CONFIG)}
    p9_rows = {r.method: r for r in results["resnet50_b512"]}
    x86_gain = x86_rows["pooch"].speedup / x86_rows["swap-all"].speedup
    p9_gain = p9_rows["pooch"].speedup / p9_rows["swap-all"].speedup
    assert x86_gain > p9_gain
