"""Extensions beyond the paper's own evaluation.

1. Extra baselines (vDNN-style swap-only, Chen-style recompute-all) against
   PoocH on the ResNet-50/batch-512/x86 workload — the related-work methods
   §6 discusses but does not measure.
(The search-cost measurement lives in
``test_bench_search_cost_parallel.py``, which also covers the parallel
search determinism contract.)
"""

from repro.analysis import Table
from repro.baselines import plan_checkpoint, plan_recompute_all, plan_vdnn
from repro.common.errors import OutOfMemoryError
from repro.experiments import optimize_cached
from repro.hw import X86_V100
from repro.models import resnet50
from repro.runtime import images_per_second

from benchmarks.conftest import BENCH_CONFIG, run_once


def test_bench_extension_related_work_baselines(benchmark, report):
    g = resnet50(512)

    def run():
        rows = []
        for plan in (plan_vdnn(g, X86_V100), plan_recompute_all(g, X86_V100),
                     plan_checkpoint(g, X86_V100)):
            try:
                r = plan.execute(g, X86_V100)
                rows.append((plan.name, f"{images_per_second(r, 512):.1f}"))
            except OutOfMemoryError as e:
                rows.append((plan.name, f"FAIL ({str(e)[:40]})"))
        res = optimize_cached("resnet50:batch=512", lambda: resnet50(512),
                              X86_V100, BENCH_CONFIG)
        rows.append(("pooch", f"{images_per_second(res.execute(X86_V100), 512):.1f}"))
        return rows

    rows = run_once(benchmark, run)
    t = Table("Extension: related-work baselines, ResNet-50 b512 on x86",
              ["method", "img/s"])
    for name, val in rows:
        t.add(name, val)
    report("extension_related_work_baselines", t.render())

    by = dict(rows)
    # vDNN's conv-focused swap-only plan keeps too much for this workload,
    # and unsegmented recompute-all recurses itself out of memory — both are
    # exactly the failure modes the hybrid method was designed to avoid
    assert "FAIL" in by["vdnn"] or float(by["vdnn"]) < float(by["pooch"])
    assert "FAIL" in by["recompute-all"] or (
        float(by["recompute-all"]) < float(by["pooch"])
    )
    # proper sqrt(n) checkpointing runs at batch 512 but stays behind the
    # hybrid (and hits its keep-floor at batch 640, where PoocH still runs)
    ck = by["checkpoint(k=10)"]
    assert "FAIL" in ck or float(ck) <= float(by["pooch"]) * 1.001
    g640 = resnet50(640)
    try:
        plan_checkpoint(g640, X86_V100).execute(g640, X86_V100)
        ck_640_runs = True
    except OutOfMemoryError:
        ck_640_runs = False
    assert not ck_640_runs  # swap-free methods cannot reach batch 640
