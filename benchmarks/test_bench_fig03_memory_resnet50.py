"""Fig. 3 — ResNet-50 training memory vs batch size.

Paper: memory grows proportionally to batch size and "exceeds 50 GB with the
batch size of 640"; the 16 GB V100 line is crossed between batch 128 and 256
(in-core execution fails from 256 upward in Fig. 17).
"""

from repro.common.units import GiB
from repro.analysis import Table
from repro.experiments import resnet50_memory_curve

from benchmarks.conftest import run_once

BATCHES = (32, 64, 128, 192, 256, 384, 512, 640)


def test_bench_fig03_resnet50_memory(benchmark, report):
    rows = run_once(
        benchmark, lambda: resnet50_memory_curve(batches=BATCHES, measure=True)
    )

    t = Table("Fig. 3: ResNet-50 memory usage vs batch size",
              ["batch", "estimate (GiB)", "measured in-core peak (GiB)",
               "fits 16 GB V100"])
    for row in rows:
        measured = (f"{row.measured_peak / GiB:.2f}" if row.measured_peak
                    else "OOM")
        t.add(row.label, row.estimate_gib, measured,
              "yes" if row.fits_16gb else "no")
    report("fig03_memory_resnet50", t.render())

    by_batch = {r.label: r for r in rows}
    # proportional growth
    est = [r.estimate_bytes for r in rows]
    assert all(a < b for a, b in zip(est, est[1:]))
    ratio = by_batch["batch=512"].estimate_bytes / by_batch["batch=128"].estimate_bytes
    assert 3.3 < ratio < 4.5  # ~linear in batch
    # the paper's anchors
    assert by_batch["batch=640"].estimate_gib > 47  # ">50 GB" (GB vs GiB slack)
    assert by_batch["batch=128"].fits_16gb
    assert not by_batch["batch=256"].fits_16gb
    # measured in-core peaks agree with the estimate where they fit
    for r in rows:
        if r.measured_peak is not None:
            assert abs(r.measured_peak - r.estimate_bytes) / r.estimate_bytes < 0.35
    # in-core actually OOMs from 256 on the 16 GB machine
    assert by_batch["batch=256"].measured_peak is None
