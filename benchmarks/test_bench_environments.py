"""Tables 1 & 2 — the evaluation environments.

Regenerates the two machine-description tables from the machine specs the
whole simulation stack runs on, confirming the modelled environments match
what the paper reports.
"""

from repro.analysis import Table
from repro.hw import POWER9_V100, X86_V100

from benchmarks.conftest import run_once


def _env_table(machine, title):
    t = Table(title, ["property", "value"])
    for key, value in machine.environment_table():
        t.add(key, value)
    return t.render()


def test_bench_tables_1_and_2_environments(benchmark, report):
    def run():
        return (
            _env_table(X86_V100, "Table 1: evaluation environment (x86)"),
            _env_table(POWER9_V100, "Table 2: evaluation environment (POWER9)"),
        )

    x86_text, p9_text = run_once(benchmark, run)
    report("table1_environment_x86", x86_text)
    report("table2_environment_power9", p9_text)

    # paper-stated properties
    assert "16 GB" in x86_text and "PCIe gen3 x16" in x86_text
    assert "75 GB/sec" in p9_text and "NVLink" in p9_text
    assert "1000 GB" in p9_text  # 1 TB host memory
