"""Planner-as-a-service throughput on a duplicate-heavy workload (ISSUE 10).

The serving argument mirrors the paper's: one profiling + search amortizes
over everything that reuses it.  Here 8 tenants each submit the same
ResNet-18 (batch=256, x86) optimize request 3 times — 24 requests, one
distinct problem — the shape of a hyperparameter sweep or a fleet of
identical training jobs hitting a shared planner.

Measured against a serial no-server baseline (24 independent
``PoocH.optimize`` calls, no cache):

* the server answers all 24 with **exactly one** search (counter-asserted)
  — the in-flight duplicates coalesce, later arrivals hit the warm LRU;
* every response carries a **bit-identical** plan, equal to the direct
  no-server optimize;
* wall-time speedup is **>= 5x** (the ISSUE acceptance floor; in practice
  it tracks the duplicate ratio, ~24x minus HTTP overhead).

A second all-warm round measures the served hit path itself, and a
microbenchmark isolates the satellite perf fix: ``graph_signature`` is
memoized on the graph instance, so the per-request key computation is a
dict lookup instead of a fresh SHA-256 over every layer.

Machine-readable numbers go to ``benchmarks/results/BENCH_serve.json``
(uploaded by the CI bench job's artifact step).
"""

from __future__ import annotations

import json
import threading
import time

from repro.analysis import Table
from repro.hw import X86_V100
from repro.models import build_model
from repro.pooch import PoocH, PoochConfig
from repro.runtime.plan_io import graph_signature, plan_to_dict
from repro.serve import JobManager, PlannerClient, PlannerServer, ServePlanner

from benchmarks.conftest import run_once

MODEL = "resnet18"
BATCH = 256
BUDGET = 200
TENANTS = 8
REPEATS = 3  # per tenant
N_REQUESTS = TENANTS * REPEATS

SERVE_CONFIG = PoochConfig(step1_sim_budget=BUDGET)


def _submit_round(url: str) -> tuple[float, list[dict]]:
    """All tenants fire concurrently; returns (wall_s, final job docs)."""
    barrier = threading.Barrier(N_REQUESTS)
    docs: list[dict] = []
    lock = threading.Lock()

    def one_request(tenant: int) -> None:
        client = PlannerClient(url, timeout=120)
        barrier.wait()
        doc = client.submit(MODEL, batch=BATCH, tenant=f"tenant-{tenant}",
                            config={"budget": BUDGET})
        if doc["state"] not in ("done", "failed", "cancelled"):
            doc = client.wait(doc["id"], timeout=120)
        with lock:
            docs.append(doc)

    threads = [
        threading.Thread(target=one_request, args=(t,))
        for t in range(TENANTS) for _ in range(REPEATS)
    ]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - start
    assert len(docs) == N_REQUESTS
    assert all(d["state"] == "done" for d in docs)
    return wall, docs


def test_bench_serve_coalescing(benchmark, report, results_dir):
    def run():
        # -- baseline: 24 independent searches, no server, no cache --------
        serial_start = time.perf_counter()
        direct = None
        for _ in range(N_REQUESTS):
            graph = build_model(MODEL, batch=BATCH)
            direct = PoocH(X86_V100, SERVE_CONFIG).optimize(graph)
        serial_wall = time.perf_counter() - serial_start

        # -- the server: same 24 requests, concurrently --------------------
        manager = JobManager(
            ServePlanner(), workers=2, max_queue=N_REQUESTS,
            tenant_quota=REPEATS + 1,
        )
        with PlannerServer(manager, port=0) as server:
            served_wall, docs = _submit_round(server.url)
            round1 = {k: v for k, v in manager.counters.items() if v}
            # -- round 2: everything warm ----------------------------------
            warm_wall, warm_docs = _submit_round(server.url)
            stats = manager.stats()
        return {
            "serial_wall": serial_wall,
            "served_wall": served_wall,
            "warm_wall": warm_wall,
            "docs": docs,
            "warm_docs": warm_docs,
            "round1": round1,
            "stats": stats,
            "direct": direct,
        }

    out = run_once(benchmark, run)
    docs, stats = out["docs"], out["stats"]

    # exactly one profiling+search served the whole first round
    assert out["round1"]["searches"] == 1, out["round1"]
    tiers: dict[str, int] = {}
    for d in docs:
        tiers[d["cache_tier"]] = tiers.get(d["cache_tier"], 0) + 1
    assert tiers["miss-search"] == 1
    assert tiers.get("coalesced", 0) + tiers.get("warm-lru", 0) == N_REQUESTS - 1

    # round 2 is pure L1: no new searches, all warm
    assert stats["counters"]["searches"] == 1
    assert all(d["cache_tier"] == "warm-lru" for d in out["warm_docs"])

    # bit-identical plans: all 24 responses equal each other *and* the
    # direct no-server optimize
    graph = build_model(MODEL, batch=BATCH)
    expected = json.dumps(
        plan_to_dict(out["direct"].classification, graph,
                     machine=X86_V100.name,
                     predicted_time=out["direct"].predicted.time),
        sort_keys=True)
    served_plans = {json.dumps(d["result"]["plan"], sort_keys=True)
                    for d in docs + out["warm_docs"]}
    assert served_plans == {expected}

    # the acceptance floor: >= 5x over the serial no-server loop
    speedup = out["serial_wall"] / out["served_wall"]
    assert speedup >= 5.0, (
        f"server {out['served_wall']:.2f}s vs serial "
        f"{out['serial_wall']:.2f}s = {speedup:.1f}x (< 5x floor)")

    coalesce_rate = tiers.get("coalesced", 0) / N_REQUESTS

    # -- satellite microbenchmark: memoized graph_signature ----------------
    cold_graph = build_model(MODEL, batch=BATCH)
    t0 = time.perf_counter()
    sig = graph_signature(cold_graph)
    cold_us = (time.perf_counter() - t0) * 1e6
    reps = 10_000
    t0 = time.perf_counter()
    for _ in range(reps):
        graph_signature(cold_graph)
    memo_us = (time.perf_counter() - t0) * 1e6 / reps
    assert cold_graph.__dict__["_graph_signature"] == sig
    sig_speedup = cold_us / memo_us if memo_us else float("inf")

    payload = {
        "model": MODEL,
        "batch": BATCH,
        "machine": X86_V100.name,
        "budget": BUDGET,
        "tenants": TENANTS,
        "requests": N_REQUESTS,
        "serial_wall_s": round(out["serial_wall"], 4),
        "served_wall_s": round(out["served_wall"], 4),
        "warm_round_wall_s": round(out["warm_wall"], 4),
        "speedup": round(speedup, 2),
        "searches": stats["counters"]["searches"],
        "coalesced": stats["counters"]["coalesced"],
        "warm_hits": stats["counters"]["warm_hits"],
        "coalesce_rate": round(coalesce_rate, 4),
        "tier_counts_round1": tiers,
        "warm_requests_per_s": round(N_REQUESTS / out["warm_wall"], 1),
        "graph_signature_cold_us": round(cold_us, 2),
        "graph_signature_memo_us": round(memo_us, 3),
        "graph_signature_speedup": round(sig_speedup, 1),
    }
    (results_dir / "BENCH_serve.json").write_text(
        json.dumps(payload, indent=2) + "\n")

    t = Table(
        f"planning service vs serial optimize — {N_REQUESTS} identical "
        f"requests ({MODEL}, batch={BATCH}, x86) from {TENANTS} tenants",
        ["mode", "wall (s)", "searches", "req/s"],
    )
    t.add("serial loop", f"{out['serial_wall']:.2f}", N_REQUESTS,
          f"{N_REQUESTS / out['serial_wall']:.1f}")
    t.add("server round 1", f"{out['served_wall']:.2f}", 1,
          f"{N_REQUESTS / out['served_wall']:.1f}")
    t.add("server round 2 (warm)", f"{out['warm_wall']:.2f}", 0,
          f"{N_REQUESTS / out['warm_wall']:.1f}")
    t.add("speedup (round 1)", f"{speedup:.1f}x", "", "")
    t.add("coalesce rate", f"{coalesce_rate:.0%}", "", "")
    t.add("graph_signature memo",
          f"{cold_us:.0f}us -> {memo_us:.2f}us", "", f"{sig_speedup:.0f}x")
    report("extension_serve", t.render())
