"""Fig. 22 — 3D-ResNeXt-101 throughput vs input size on the POWER9 machine.

Paper: same sweep as Fig. 21 on NVLink; degradation below 10 % on both
environments, PoocH ahead of superneurons.
"""

from repro.experiments import performance_sweep
from repro.hw import POWER9_V100

from benchmarks.conftest import BENCH_CONFIG, run_once, sweep_table
from benchmarks.test_bench_fig21_resnext3d_x86 import SIZES, VOLUME


def test_bench_fig22_resnext3d_power9(benchmark, report):
    rows = run_once(
        benchmark,
        lambda: performance_sweep(
            "resnext3d", SIZES, POWER9_V100,
            methods=("in-core", "superneurons", "pooch"),
            config=BENCH_CONFIG,
        ),
    )
    report("fig22_resnext3d_power9",
           sweep_table("Fig. 22: ResNeXt-101 (3D) on POWER9 (clips/s, batch=1)",
                       rows))

    by = {(r.method, r.size_label): r for r in rows}
    assert by[("in-core", "64x448x448")].ok
    assert not by[("in-core", "96x512x512")].ok
    assert by[("pooch", "96x512x512")].ok
    assert by[("pooch", "112x576x576")].ok

    incore = by[("in-core", "64x448x448")]
    incore_rate = incore.images_per_second * VOLUME["64x448x448"]
    for label in ("96x512x512", "112x576x576"):
        pooch_rate = by[("pooch", label)].images_per_second * VOLUME[label]
        assert pooch_rate > 0.9 * incore_rate  # ≤10 % per-voxel degradation

    for label in ("96x512x512", "112x576x576"):
        sn = by[("superneurons", label)]
        if sn.ok:
            assert (by[("pooch", label)].images_per_second
                    >= sn.images_per_second * 0.999)
