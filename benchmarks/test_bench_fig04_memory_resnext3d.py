"""Fig. 4 — 3D-ResNeXt-101 training memory vs input size at batch 1.

Paper: memory grows with the 3D input volume and reaches ~58 GB at the
largest input even with batch size 1 — the workload where batching tricks
cannot help and out-of-core execution is the only option.
"""

from repro.common.units import GiB
from repro.analysis import Table
from repro.experiments import resnext3d_memory_curve
from repro.experiments.memusage import RESNEXT3D_SIZES

from benchmarks.conftest import run_once


def test_bench_fig04_resnext3d_memory(benchmark, report):
    rows = run_once(
        benchmark,
        lambda: resnext3d_memory_curve(sizes=RESNEXT3D_SIZES, measure=False),
    )

    t = Table("Fig. 4: ResNeXt-101 (3D) memory usage vs input size (batch=1)",
              ["input (TxHxW)", "estimate (GiB)", "fits 16 GB V100"])
    for row in rows:
        t.add(row.label, row.estimate_gib, "yes" if row.fits_16gb else "no")
    report("fig04_memory_resnext3d", t.render())

    est = [r.estimate_bytes for r in rows]
    assert all(a < b for a, b in zip(est, est[1:]))  # grows with input volume
    assert rows[0].fits_16gb  # smallest clip trains in-core
    assert not rows[-1].fits_16gb  # largest blows past the GPU at batch 1
    assert rows[-1].estimate_gib > 45  # the paper's ~58 GB scale
