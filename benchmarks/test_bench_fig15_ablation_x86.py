"""Fig. 15 — contribution of each optimization, x86 machine.

Paper: on PCIe, the improved swap-in schedule buys 2-14 % over swap-all
without it; the keep/swap classification ("swap-opt") buys a further
1.4-3.0x; full PoocH is fastest everywhere, with the biggest PoocH-over-
swap-opt gap on ResNet-50 (x1.45) because its many cheap bandwidth-bound
layers are better recomputed than swapped on a slow link, and near-zero gap
on AlexNet whose heavy convolutions already hide all transfers.
"""

from repro.analysis import Table
from repro.experiments import ablation_rows
from repro.hw import X86_V100
from repro.models import alexnet, resnet50, resnext101_3d

from benchmarks.conftest import BENCH_CONFIG, run_once

WORKLOADS = [
    ("resnet50_b512", lambda: resnet50(512), 512),
    ("alexnet_b3072", lambda: alexnet(3072), 3072),
    ("resnext3d_96x512x512", lambda: resnext101_3d((96, 512, 512)), 1),
]


def test_bench_fig15_ablation_x86(benchmark, report):
    def run():
        return {
            key: ablation_rows(key, build, batch, X86_V100, BENCH_CONFIG)
            for key, build, batch in WORKLOADS
        }

    results = run_once(benchmark, run)

    t = Table("Fig. 15: per-optimization speedup on x86 "
              "(relative to swap-all w/o scheduling)",
              ["model", "method", "img/s", "speedup"])
    for key, rows in results.items():
        for r in rows:
            t.add(key, r.method,
                  r.images_per_second if r.images_per_second else "FAIL",
                  r.speedup if r.speedup else "-")
    report("fig15_ablation_x86", t.render())

    for key, rows in results.items():
        by = {r.method: r for r in rows}
        base = by["swap-all(w/o scheduling)"]
        assert base.ok, f"{key}: baseline failed: {base.failure}"
        # cumulative ordering: each optimization at least holds the line
        assert by["swap-all"].speedup >= 0.99
        assert by["swap-opt"].speedup >= by["swap-all"].speedup * 0.999
        assert by["pooch"].speedup >= by["swap-opt"].speedup * 0.999

    # ResNet-50: classification is the big win on PCIe (paper: 1.4-3.0x)
    resnet = {r.method: r for r in results["resnet50_b512"]}
    assert resnet["swap-opt"].speedup > 1.3
    # PoocH's recompute step matters for ResNet-50 on PCIe (paper: x1.45)
    assert resnet["pooch"].speedup > resnet["swap-opt"].speedup * 1.05

    # AlexNet: recomputation is rarely chosen; PoocH ~ swap-opt (paper)
    alex = {r.method: r for r in results["alexnet_b3072"]}
    assert alex["pooch"].speedup <= alex["swap-opt"].speedup * 1.25
