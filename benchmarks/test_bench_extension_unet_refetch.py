"""Extension — skip connections and forward re-fetch (U-Net case study).

Under the paper's §3.1 rule a swapped map stays on the GPU until its *last
forward* consumer, so U-Net's encoder skips are pinned through the whole
forward pass: no classification can push the forward footprint below the sum
of live skips.  The forward re-fetch extension
(``ScheduleOptions.forward_refetch_gap``) frees a skip after its encoder
consumer and swaps it back in just before the matching decoder stage.

This benchmark measures the floor moving: the smallest GPU each strategy can
train a fixed U-Net on, and the throughput each achieves on a mid-sized GPU.
"""

from repro.analysis import Table
from repro.common.errors import OutOfMemoryError
from repro.common.units import MiB
from repro.models import unet
from repro.pooch import PoocH, PoochConfig
from repro.runtime import Classification, ScheduleOptions, execute

from benchmarks.conftest import run_once
from tests.conftest import tiny_machine


def _floor(graph, options) -> int:
    """Smallest machine (MiB, 16 MiB steps) that runs all-swap."""
    cls = Classification.all_swap(graph)
    hi = int(graph.training_memory_bytes() / MiB)
    floor = hi
    for mem in range(hi, 32, -16):
        try:
            execute(graph, cls, tiny_machine(mem_mib=mem, link_gbps=4.0),
                    options=options)
            floor = mem
        except OutOfMemoryError:
            break
    return floor


def test_bench_extension_unet_forward_refetch(benchmark, report):
    g = unet(16, image=128, base_channels=16, depth=3, num_classes=4)

    def run():
        plain_floor = _floor(g, ScheduleOptions())
        refetch_floor = _floor(g, ScheduleOptions(forward_refetch_gap=8))
        # throughput comparison on a machine below the plain floor
        m = tiny_machine(mem_mib=int(plain_floor * 0.85), link_gbps=4.0)
        res = PoocH(m, PoochConfig(max_exact_li=4, step1_sim_budget=200,
                                   forward_refetch_gap=8)).optimize(g)
        t = res.execute(m)
        return plain_floor, refetch_floor, m, t

    plain_floor, refetch_floor, m, t = run_once(benchmark, run)
    tab = Table("Extension: U-Net skips — minimum GPU for all-swap",
                ["strategy", "floor (MiB)"])
    tab.add("paper rule (pinned skips)", plain_floor)
    tab.add("forward re-fetch (gap=8)", refetch_floor)
    tab.add(f"PoocH+refetch on {m.gpu_mem_capacity // MiB} MiB GPU",
            f"{t.makespan * 1e3:.1f} ms/iter")
    report("extension_unet_refetch", tab.render())

    need = g.training_memory_bytes() / MiB
    assert plain_floor < need  # out-of-core helps at all
    assert refetch_floor < plain_floor * 0.92  # and re-fetch moves the floor
    assert t.device_peak <= m.usable_gpu_memory
