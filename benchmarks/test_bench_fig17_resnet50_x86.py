"""Fig. 17 — ResNet-50 throughput vs batch size on the x86 machine.

Paper: in-core runs at 316 img/s up to batch 128 and fails from 256; PoocH
sustains 195-316 img/s (13-38 % degradation) through batch 640 (>50 GB);
PoocH beats superneurons by x1.40-x1.73 at batches 256-512; superneurons
fails at 640; and a plan optimized for the POWER9 machine runs worse on x86
(and can fail) because the malloc/free order it was tuned for differs.

Our substitution notes (EXPERIMENTS.md): superneurons degrades instead of
crashing at 640 — our memory pool stalls ungated allocations that the real
Chainer would have failed — and the x86/POWER9 plan gap is present but
small-batch-dependent.
"""

from repro.experiments import performance_sweep
from repro.hw import POWER9_V100, X86_V100
from repro.models import resnet50

from benchmarks.conftest import BENCH_CONFIG, run_once, sweep_table

SIZES = [(f"batch={b}", b, (lambda b=b: resnet50(b)))
         for b in (128, 256, 384, 512, 640)]


def test_bench_fig17_resnet50_x86(benchmark, report):
    rows = run_once(
        benchmark,
        lambda: performance_sweep(
            "resnet50", SIZES, X86_V100,
            methods=("in-core", "superneurons", "pooch"),
            config=BENCH_CONFIG, cross_machine=POWER9_V100,
        ),
    )
    report("fig17_resnet50_x86",
           sweep_table("Fig. 17: ResNet-50 on x86 (#images/s)", rows))
    from repro.analysis import bar_chart
    report("fig17_resnet50_x86_chart", "\n\n".join(
        bar_chart(
            f"ResNet-50 x86, batch={b}",
            [(r.method, r.images_per_second) for r in rows
             if r.size_label == f"batch={b}"],
            unit=" img/s",
        )
        for b in (128, 256, 384, 512, 640)
    ))

    by = {(r.method, r.size_label): r for r in rows}

    # in-core: works at 128, fails from 256 (paper)
    assert by[("in-core", "batch=128")].ok
    for b in (256, 384, 512, 640):
        assert not by[("in-core", f"batch={b}")].ok

    # PoocH: sustains every size including the >50 GB batch-640 case
    for b in (128, 256, 384, 512, 640):
        assert by[("pooch", f"batch={b}")].ok

    # degradation vs in-core is bounded and grows with batch (paper: 13-38 %)
    incore = by[("in-core", "batch=128")].images_per_second
    pooch_640 = by[("pooch", "batch=640")].images_per_second
    assert pooch_640 > 0.5 * incore
    assert pooch_640 < incore
    pooch_256 = by[("pooch", "batch=256")].images_per_second
    assert pooch_256 >= pooch_640 * 0.999

    # PoocH beats superneurons where both run out-of-core (paper: 1.40-1.73x)
    for b in (256, 384, 512):
        sn = by[("superneurons", f"batch={b}")]
        if sn.ok:
            ratio = by[("pooch", f"batch={b}")].images_per_second / sn.images_per_second
            assert ratio > 1.2, f"batch {b}: PoocH only {ratio:.2f}x superneurons"

    # the POWER9-optimized plan is never better, and is strictly worse (or
    # fails) somewhere in the out-of-core range (paper's portability claim)
    worse_somewhere = False
    for b in (256, 384, 512, 640):
        native = by[("pooch", f"batch={b}")]
        foreign = by[("pooch[power9-plan]", f"batch={b}")]
        if not foreign.ok:
            worse_somewhere = True
            continue
        assert foreign.images_per_second <= native.images_per_second * 1.01
        if foreign.images_per_second < native.images_per_second * 0.98:
            worse_somewhere = True
    assert worse_somewhere
