"""Extension — dynamic problem sizes (the paper's stated future work, §7).

A training stream whose batch size varies per iteration (bucketed data,
curriculum schedules).  Compares the two DynamicPoocH strategies against
re-optimizing blindly every iteration and against a static
worst-case plan.
"""

from repro.analysis import Table
from repro.hw import X86_V100
from repro.models import resnet50
from repro.pooch import PoochConfig
from repro.pooch.dynamic import DynamicPoocH
from repro.runtime import execute

from benchmarks.conftest import run_once

#: bucketed batch sizes, large sizes rare (a realistic long tail)
STREAM = [256, 256, 320, 256, 384, 256, 320, 256, 256, 384]
CFG = PoochConfig(step1_sim_budget=300, max_exact_li=6)


def test_bench_extension_dynamic_sizes(benchmark, report):
    def run():
        results = {}
        for strategy in ("exact", "nearest"):
            d = DynamicPoocH(X86_V100, lambda b: resnet50(b), CFG,
                             strategy=strategy)
            stats = d.run_stream(list(STREAM))
            results[strategy] = stats
        # static worst-case alternative: one plan for the largest size,
        # executed at the largest size every iteration (padding)
        d = DynamicPoocH(X86_V100, lambda b: resnet50(b), CFG)
        plan = d.plan_for(max(STREAM))
        g = d._graph(max(STREAM))
        pad_iter = execute(g, plan, X86_V100).makespan
        results["pad-to-max"] = pad_iter * len(STREAM)
        return results

    results = run_once(benchmark, run)
    t = Table(
        "Extension: dynamic batch sizes over a 10-iteration stream "
        "(ResNet-50, x86)",
        ["strategy", "optimizations", "total sim time (s)"],
    )
    exact, nearest = results["exact"], results["nearest"]
    t.add("exact (plan per size)", exact.optimizations, exact.total_time)
    t.add("nearest (transfer larger plan)", nearest.optimizations,
          nearest.total_time)
    t.add("pad everything to max size", 1, results["pad-to-max"])
    report("extension_dynamic_sizes", t.render())

    assert exact.iterations == len(STREAM)
    # one search per distinct size, not per iteration
    assert exact.optimizations == len(set(STREAM))
    # the nearest strategy saves searches
    assert nearest.optimizations <= exact.optimizations
    # and padding to the max size wastes real time vs size-aware planning
    assert exact.total_time < results["pad-to-max"]
