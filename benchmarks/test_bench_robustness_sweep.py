"""Robustness-sweep cost: 64 fault seeds in lockstep vs a serial loop.

``robustness_report`` used to quote single-draw degradation numbers; the
seed-distribution rewrite executes the chosen plan under many fault seeds.
This benchmark measures what makes that affordable: for a vectorizable spec
(pure ``duration_noise``) the sweep compiles the chosen plan's draft *once*
into ``VectorTables``, precomputes each seed's keyed-RNG duration table into
a (K, n) matrix, and replays all K seeds in one lockstep batch — versus the
serial arm's per-seed schedule rebuild + event-engine run.

The headline claim (ISSUE 8 acceptance): a 64-seed ``duration_noise`` sweep
on ResNet-50 (batch=256, x86) is >=5x faster wall-clock than the serial
per-seed loop, with every vectorized row bit-identical to its serial
counterpart.  Machine-readable numbers (walls, speedup, P50/P95/P99,
vectorized-vs-fallback row split) go to
``benchmarks/results/BENCH_robustness.json`` — uploaded by the CI bench
job's artifact step, which also prints the row breakdown in the run log.
"""

import json
import time

import numpy as np

from repro.experiments.cache import optimize_cached
from repro.faults import FaultSpec, fault_seed_sweep
from repro.hw import X86_V100
from repro.models import resnet50
from repro.runtime.schedule import ScheduleOptions

from benchmarks.conftest import BENCH_CONFIG, run_once

N_SEEDS = 64
SPEC = FaultSpec(duration_noise=0.1)


def test_bench_robustness_sweep(benchmark, report, results_dir):
    def run():
        result = optimize_cached("resnet50_b256", lambda: resnet50(256),
                                 X86_V100, BENCH_CONFIG)
        options = ScheduleOptions(
            policy=result.config.policy,
            forward_refetch_gap=result.config.forward_refetch_gap,
        )
        seeds = range(N_SEEDS)
        arms = {}
        for label, vectorize in (("vectorized", True), ("serial", False)):
            t0 = time.perf_counter()
            outs = fault_seed_sweep(
                result.graph, result.classification, X86_V100, SPEC, seeds,
                options=options, vectorize=vectorize,
            )
            arms[label] = (outs, time.perf_counter() - t0)
        return arms

    arms = run_once(benchmark, run)
    vec, t_vec = arms["vectorized"]
    ser, t_ser = arms["serial"]

    # bit-identity first: every vectorized row equals its serial counterpart
    # (the serial arm rebuilds the schedule under each seed's injector and
    # replays it on the event engine inside execute_resilient)
    assert all(o.vectorized for o in vec)
    assert all(not o.vectorized for o in ser)
    for a, b in zip(vec, ser):
        assert a.seed == b.seed
        assert a.makespan == b.makespan  # exact, never approx
        assert a.device_peak == b.device_peak
        assert a.host_peak == b.host_peak
        assert b.plan_used == "chosen-plan" and not b.degraded

    makespans = np.array([o.makespan for o in vec])
    p50, p95, p99 = (float(np.percentile(makespans, q)) for q in (50, 95, 99))
    speedup = t_ser / t_vec
    n_vec = sum(o.vectorized for o in vec)
    n_fb = N_SEEDS - n_vec

    payload = {
        "model": "resnet50",
        "batch": 256,
        "machine": X86_V100.name,
        "spec": SPEC.describe(),
        "seeds": N_SEEDS,
        "vectorized": {"wall_s": round(t_vec, 3), "rows_vectorized": n_vec,
                       "rows_fallback": n_fb},
        "serial": {"wall_s": round(t_ser, 3)},
        "wall_speedup": round(speedup, 2),
        "p50_ms": round(p50 * 1e3, 4),
        "p95_ms": round(p95 * 1e3, 4),
        "p99_ms": round(p99 * 1e3, 4),
        "oom_rate": sum(o.oom for o in vec) / N_SEEDS,
        "fallback_rate": sum(o.degraded for o in vec) / N_SEEDS,
        "retry_rate": sum(o.transfer_retries > 0 for o in vec) / N_SEEDS,
        "rows_bit_identical": True,
    }
    (results_dir / "BENCH_robustness.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    report(
        "extension_robustness_sweep",
        f"Monte-Carlo robustness sweep, ResNet-50 (batch=256, x86), "
        f"{N_SEEDS} seeds of '{SPEC.describe()}' over the chosen plan:\n"
        f"  lockstep (per-row duration tables): {t_vec:.2f} s wall "
        f"({n_vec} vectorized rows, {n_fb} fallback)\n"
        f"  serial per-seed loop: {t_ser:.2f} s wall\n"
        f"  makespan P50/P95/P99: {p50 * 1e3:.3f} / {p95 * 1e3:.3f} / "
        f"{p99 * 1e3:.3f} ms\n"
        f"  wall speedup: {speedup:.1f}x; every row bit-identical",
    )

    # headline claim: >=5x wall reduction, all rows lockstep for this spec
    assert n_vec == N_SEEDS
    assert speedup >= 5.0
