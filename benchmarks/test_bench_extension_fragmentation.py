"""Extension — allocator-model ablation: counting pool vs best-fit arena.

DESIGN.md §5 argues the paper's memory effects are capacity effects, which
justifies the counting pool that keeps PoocH's predictor exactly consistent
with ground truth.  This benchmark quantifies the limits of that choice:

* the all-swap plan is insensitive to the allocator model;
* PoocH's default plan runs the pool at 100 % occupancy and a real best-fit
  arena *can* break it through fragmentation (a genuine finding of this
  reproduction, not in the paper);
* a ``capacity_margin`` in the search (plans must leave slack) restores
  robustness at a small throughput price.
"""

from repro.analysis import Table
from repro.common.errors import OutOfMemoryError
from repro.common.units import MiB
from repro.experiments import optimize_cached
from repro.hw import X86_V100
from repro.models import resnet50
from repro.pooch import PoochConfig
from repro.runtime import Classification, execute, images_per_second

from benchmarks.conftest import BENCH_CONFIG, run_once

MARGIN_CONFIG = PoochConfig(
    max_exact_li=BENCH_CONFIG.max_exact_li,
    step1_sim_budget=BENCH_CONFIG.step1_sim_budget,
    capacity_margin=2048 * MiB,
)


def test_bench_extension_fragmentation(benchmark, report):
    g = resnet50(512)

    def run():
        plans = [("all-swap", Classification.all_swap(g))]
        res = optimize_cached("resnet50:batch=512", lambda: resnet50(512),
                              X86_V100, BENCH_CONFIG)
        plans.append(("pooch (no margin)", res.classification))
        res_m = optimize_cached("resnet50:batch=512", lambda: resnet50(512),
                                X86_V100, MARGIN_CONFIG)
        plans.append(("pooch (2 GiB margin)", res_m.classification))
        rows = []
        for name, cls in plans:
            counting = execute(g, cls, X86_V100)
            try:
                block = execute(g, cls, X86_V100, fragmentation=True)
                arena = images_per_second(block, 512)
            except OutOfMemoryError as e:
                arena = None
            rows.append((name, images_per_second(counting, 512), arena))
        return rows

    rows = run_once(benchmark, run)
    t = Table(
        "Extension: counting pool vs best-fit arena (ResNet-50 b512, x86)",
        ["plan", "img/s (counting)", "img/s (arena)"],
    )
    for name, a, b in rows:
        t.add(name, a, b if b is not None else "FAIL (fragmentation)")
    report("extension_fragmentation", t.render())

    by = {name: (a, b) for name, a, b in rows}
    # all-swap never fills the pool: allocator model irrelevant
    a, b = by["all-swap"]
    assert b is not None and abs(a / b - 1.0) < 0.02
    # the margin-searched plan survives the arena.  (Survival is not
    # monotone in the margin — the plan itself changes with it and so does
    # the arena layout; 2 GiB is an empirically robust point for this
    # deterministic workload.)
    a_m, b_m = by["pooch (2 GiB margin)"]
    assert b_m is not None
    # and still clearly beats all-swap
    assert b_m > by["all-swap"][0] * 1.5
