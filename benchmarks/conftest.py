"""Shared benchmark infrastructure.

Every benchmark regenerates one of the paper's tables or figures: it runs the
corresponding experiment driver, prints the same rows/series the paper
reports, writes them under ``benchmarks/results/`` and asserts the *shape*
claims (who wins, by roughly what factor, what fails) — absolute numbers come
from an analytic cost model and are recorded, not asserted (EXPERIMENTS.md).

Expensive PoocH searches are shared between benchmarks through
``repro.experiments.cache`` (e.g. Fig. 15, Fig. 17 and Table 3 all reuse the
ResNet-50/batch-512/x86 search), so run the whole directory in one pytest
invocation for the intended total runtime (~25-30 min).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.pooch import PoochConfig

#: search budget used by every benchmark (cache key — keep consistent)
BENCH_CONFIG = PoochConfig(max_exact_li=8, step1_sim_budget=800)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

_BENCH_DIR = pathlib.Path(__file__).parent


def pytest_collection_modifyitems(items):
    """Mark everything under benchmarks/ as ``bench`` so mixed invocations
    can split the suites: ``pytest tests benchmarks -m "not bench"`` runs
    only the fast tier-1 tests, ``-m bench`` only the benchmarks."""
    for item in items:
        if _BENCH_DIR in pathlib.Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.bench)


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def report(results_dir):
    """Print a table and persist it under benchmarks/results/<name>.txt."""

    def _report(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _report


def run_once(benchmark, fn):
    """Register ``fn`` with pytest-benchmark as a single-shot measurement
    (these experiments take seconds to minutes; statistical rounds would be
    wasteful and the simulator is deterministic anyway)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def sweep_table(title: str, rows) -> str:
    """Render a list of MethodResult rows as a figure-style table."""
    from repro.analysis import Table

    t = Table(title, ["size", "method", "img/s"])
    for r in rows:
        t.add(r.size_label, r.method,
              f"{r.images_per_second:.1f}" if r.ok else f"FAIL ({r.failure[:40]})")
    return t.render()
