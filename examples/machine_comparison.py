#!/usr/bin/env python
"""Machine sensitivity: the same network, two interconnects (Table 3).

PoocH profiles the actual machine, so its keep/swap/recompute split adapts:
on PCIe (16 GB/s) recomputing cheap layers beats waiting for the bus; on
NVLink (75 GB/s) swapping is nearly free.  SuperNeurons' type-based static
rule cannot tell the machines apart.  This example also demonstrates the
paper's plan-portability pitfall: executing the NVLink-tuned plan on the
PCIe machine.

Run:  python examples/machine_comparison.py   (~2-4 min: two full searches)
"""

from repro import (
    OutOfMemoryError,
    POWER9_V100,
    PoocH,
    PoochConfig,
    X86_V100,
    images_per_second,
    plan_superneurons,
    resnet50,
)
from repro.analysis import Table
from repro.runtime import MapClass

BATCH = 512
CFG = PoochConfig(step1_sim_budget=600)


def main() -> None:
    graph = resnet50(BATCH)
    table = Table(
        f"ResNet-50 (batch={BATCH}) classification per machine",
        ["method", "machine", "#keep", "#swap", "#recomp", "img/s"],
    )

    results = {}
    for machine in (X86_V100, POWER9_V100):
        res = PoocH(machine, CFG).optimize(graph)
        results[machine.name] = res
        c = res.classification.counts()
        ips = images_per_second(res.execute(), BATCH)
        table.add("PoocH", machine.name, c[MapClass.KEEP], c[MapClass.SWAP],
                  c[MapClass.RECOMPUTE], ips)

    for machine in (X86_V100, POWER9_V100):
        plan = plan_superneurons(graph, machine)
        c = plan.classification.counts()
        try:
            ips = images_per_second(plan.execute(graph, machine), BATCH)
        except OutOfMemoryError:
            ips = float("nan")
        table.add("superneurons", machine.name, c[MapClass.KEEP],
                  c[MapClass.SWAP], c[MapClass.RECOMPUTE], ips)

    print(table.render())
    print("\nNote how PoocH flips swap->recompute on the slow PCIe link while"
          "\nsuperneurons is identical on both machines (the paper's Table 3).")

    # plan portability (Fig. 17's extra line)
    foreign = results["power9"]
    native = results["x86"]
    print("\n-- plan portability --")
    try:
        t = foreign.execute(X86_V100)
        print(f"POWER9-optimized plan on x86: {images_per_second(t, BATCH):.1f} "
              f"img/s (native x86 plan: "
              f"{images_per_second(native.execute(X86_V100), BATCH):.1f} img/s)")
    except OutOfMemoryError as e:
        print(f"POWER9-optimized plan on x86 FAILS: {e}")


if __name__ == "__main__":
    main()
