#!/usr/bin/env python
"""Prove the out-of-core machinery computes the *right* answer.

The simulator can execute real numpy payloads inside the task schedule: every
forward, swap copy, recomputation and backward happens at its scheduled
position, and arrays are destroyed the instant the memory pool frees their
buffer.  This example trains a small residual CNN three ways — in-core,
everything-swapped (on a GPU 10x too small for it), and everything-recomputed
— and checks the weight gradients are **bit-identical**.

Run:  python examples/numeric_validation.py     (seconds)
"""

import numpy as np

from repro import Classification, X86_V100
from repro.common.units import MiB
from repro.hw import MachineSpec
from repro.models import small_cnn
from repro.runtime.numeric import run_numeric

TINY = MachineSpec(
    name="tiny-gpu",
    cpu="host",
    gpu_mem_capacity=24 * MiB,
    gpu_mem_reserved=1 * MiB,
)


def grads_equal(a, b) -> bool:
    return all(
        np.array_equal(v, b[layer][name])
        for layer, gr in a.items()
        for name, v in gr.items()
    )


def main() -> None:
    g = small_cnn(batch=16, image=32, with_residual=True)
    print(g.summary())

    print("\n1) in-core reference on a big GPU ...")
    _, ref = run_numeric(g, Classification.all_keep(g), X86_V100)

    print(f"2) all-swap on a {TINY.gpu_mem_capacity // MiB} MiB GPU "
          f"(the model needs ~{g.training_memory_bytes() // MiB} MiB) ...")
    swap_run, swapped = run_numeric(g, Classification.all_swap(g), TINY)
    print(f"   peak device memory: {swap_run.device_peak / MiB:.1f} MiB — fits!")

    print("3) all-recompute on the big GPU ...")
    _, recomputed = run_numeric(g, Classification.all_recompute(g), X86_V100)

    assert grads_equal(ref.weight_grads, swapped.weight_grads), "swap mismatch!"
    assert grads_equal(ref.weight_grads, recomputed.weight_grads), "recompute mismatch!"
    n = sum(len(gr) for gr in ref.weight_grads.values())
    print(f"\nall {n} weight-gradient tensors are BIT-IDENTICAL across "
          "in-core / swapped / recomputed execution ✓")
    print("swapping is a pure data move and recomputation a pure replay — "
          "the schedules move exactly the right bytes at the right time.")


if __name__ == "__main__":
    main()
