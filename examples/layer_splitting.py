#!/usr/bin/env python
"""Layer splitting: when even *one layer* exceeds GPU memory (§6).

Swap and recompute manage which whole feature maps are resident, but a layer
whose own transient (input + output + workspace + backward gradients) beats
the GPU cannot run at all — the regime the paper delegates to ooc_cuDNN and
names as its integration target.  ``repro.graph.split_batch`` rewrites such
a layer into batch tiles whose maps PoocH classifies individually.

This example builds a network with one deliberately fat convolution, shows
all-swap failing on a small GPU, splits the layer, and lets PoocH plan the
tiled graph.

Run:  python examples/layer_splitting.py     (seconds)
"""

from repro import Classification, OutOfMemoryError, PoocH, PoochConfig, execute
from repro.common.units import GB, GiB, MiB
from repro.graph import GraphBuilder, max_layer_working_set, split_batch
from repro.hw import MachineSpec


def fat_net(batch=64, channels=128, image=64):
    b = GraphBuilder("fatnet")
    x = b.input((batch, 3, image, image))
    h = b.conv(x, channels, ksize=3, pad=1, activation="relu", name="fat")
    h = b.global_avg_pool(h, name="pool")
    h = b.linear(h, 10, name="head")
    b.loss(h)
    return b.build()


def main() -> None:
    graph = fat_net()
    need, layer = max_layer_working_set(graph)
    # the tiled graph still has to materialise the joined output (~2x the
    # map, vs ~2.5x + workspace for the unsplit layer's backward), so the
    # demonstrable window is a GPU between those two bounds
    machine = MachineSpec(
        name="small-gpu", cpu="host",
        gpu_mem_capacity=int(need * 0.85),
        gpu_mem_reserved=4 * MiB,
        cpu_mem_capacity=64 * GB,
    )
    print(graph.summary())
    print(f"\nlargest single-layer transient: {need / GiB:.2f} GiB "
          f"(layer {layer!r}); GPU has only "
          f"{machine.usable_gpu_memory / GiB:.2f} GiB usable")

    try:
        execute(graph, Classification.all_swap(graph), machine)
        print("unsplit all-swap unexpectedly fits")
    except OutOfMemoryError as e:
        print(f"\nall-swap on the unsplit graph FAILS (no classification can "
              f"save a layer that is too big):\n  {e}")

    parts = 4
    split = split_batch(graph, "fat", parts)
    print(f"\nafter split_batch('fat', {parts}): "
          f"{len(split)} layers, largest transient now "
          f"{max_layer_working_set(split)[0] / GiB:.2f} GiB")

    result = PoocH(machine, PoochConfig(step1_sim_budget=300)).optimize(split)
    print()
    print(result.summary())
    timeline = result.execute()
    print(f"\ntiled execution: {timeline.makespan * 1e3:.2f} ms/iteration, "
          f"peak {timeline.device_peak / GiB:.2f} GiB "
          f"<= {machine.usable_gpu_memory / GiB:.2f} GiB ✓")


if __name__ == "__main__":
    main()
