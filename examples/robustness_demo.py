#!/usr/bin/env python
"""Robustness: what happens when the machine misbehaves?

The paper profiles once and trusts the numbers.  This example stops
trusting them: a seeded `FaultInjector` perturbs the profile, inflates
task durations, stalls transfers and fires spurious allocator OOMs, and
the resilient executor has to live with it — bounded transfer retries,
plan-level retry on transient OOM, and the chosen-plan → swap-all →
recompute-all fallback chain when a plan stops being viable.

1. run one faulted iteration and print the recovery story,
2. show that the same fault seed reproduces it bit-for-bit,
3. sweep a noise ladder and tabulate the degradation profile.

Run:  python examples/robustness_demo.py  [fault-seed]   (~30 s)
"""

import sys

from repro import PoocH
from repro.analysis import robustness_report
from repro.faults import FaultSpec, RetryPolicy
from repro.models import alexnet
from repro.hw import scaled_machine, X86_V100


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 0
    machine = scaled_machine(X86_V100, mem_scale=0.25, name="x86_quarter")
    graph = alexnet(batch=128)

    # 1. one hostile run: 10% timing noise, 5% profile noise, stalls and
    # occasional spurious OOMs.  execute_resilient() never raises for
    # transient faults — it degrades and reports.
    spec = FaultSpec(duration_noise=0.10, profile_noise=0.05,
                     stall_prob=0.05, oom_prob=0.02)
    result = PoocH(machine, faults=spec, fault_seed=seed).optimize(graph)
    robust = result.execute_resilient(retry=RetryPolicy(max_transfer_retries=3))
    print(f"faults: {spec.describe()}  (seed {seed})")
    print(robust.describe())

    # 2. same seed, fresh pipeline: the faulted run is bit-reproducible
    again = (PoocH(machine, faults=spec, fault_seed=seed)
             .optimize(graph).execute_resilient())
    assert again.makespan == robust.makespan
    assert again.plan_used == robust.plan_used
    print(f"\nreplayed with the same seed: makespan identical "
          f"({robust.makespan * 1e3:.3f} ms)")

    # 3. the degradation profile across a noise ladder
    print()
    print(robustness_report(graph, machine, seed=seed).render())


if __name__ == "__main__":
    main()
