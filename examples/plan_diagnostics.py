#!/usr/bin/env python
"""Diagnostics deep-dive: why did PoocH choose this plan, and where does the
remaining time go?

Walks the explainability tooling on ResNet-50 over GPU memory:

* ``PoochResult.explain()`` — per-map rationale: sizes, the profiled
  un-hidden swap overheads that made maps search candidates, the r(X)
  recompute-vs-swap ratios;
* ``analyze_bottlenecks`` — stall attribution for the chosen plan vs the
  all-swap baseline (the quantitative version of the paper's Fig. 7);
* ``memory_curve_plot`` — device memory over the iteration, against the
  16 GB capacity line.

Run:  python examples/plan_diagnostics.py    (~1-2 min)
"""

from repro import (
    Classification,
    PoocH,
    PoochConfig,
    X86_V100,
    execute,
    images_per_second,
    resnet50,
)
from repro.analysis import analyze_bottlenecks, memory_curve_plot

BATCH = 384


def main() -> None:
    graph = resnet50(BATCH)
    machine = X86_V100

    print("optimizing (profile + classify)...")
    result = PoocH(machine, PoochConfig(step1_sim_budget=400)).optimize(graph)
    print()
    print(result.summary())

    print("\n-- why: the 12 largest feature maps --")
    print(result.explain(top=12))

    baseline = execute(graph, Classification.all_swap(graph), machine)
    chosen = result.execute()
    print("\n-- where the time goes: all-swap baseline --")
    print(analyze_bottlenecks(baseline).render())
    print("\n-- where the time goes: PoocH plan --")
    print(analyze_bottlenecks(chosen).render())
    print(f"\nthroughput: {images_per_second(baseline, BATCH):.1f} -> "
          f"{images_per_second(chosen, BATCH):.1f} img/s")

    print("\n-- device memory over the PoocH iteration --")
    print(memory_curve_plot(chosen, machine.usable_gpu_memory,
                            height=10, width=90))


if __name__ == "__main__":
    main()
