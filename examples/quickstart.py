#!/usr/bin/env python
"""Quickstart: train a network that does not fit in GPU memory.

This walks the full PoocH pipeline on the paper's headline case — ResNet-50
with a batch size whose ~20 GiB working set exceeds the 16 GB V100:

1. show that in-core execution fails,
2. profile + classify with PoocH,
3. execute the optimized plan and compare against the safe all-swap default.

Run:  python examples/quickstart.py  [batch]   (default batch 256, ~1 min)
"""

import sys

from repro import (
    Classification,
    OutOfMemoryError,
    PoocH,
    PoochConfig,
    X86_V100,
    execute,
    images_per_second,
    resnet50,
)
from repro.common.units import GiB


def main() -> None:
    batch = int(sys.argv[1]) if len(sys.argv) > 1 else 256
    graph = resnet50(batch)
    machine = X86_V100

    print(graph.summary())
    need = graph.training_memory_bytes() / GiB
    have = machine.usable_gpu_memory / GiB
    print(f"\ntraining needs ~{need:.1f} GiB; the {machine.name} GPU has "
          f"{have:.1f} GiB usable\n")

    # 1. in-core fails
    try:
        execute(graph, Classification.all_keep(graph), machine)
        print("in-core: fits (try a larger batch for the out-of-core story)")
    except OutOfMemoryError as e:
        print(f"in-core: FAILS as expected -> {e}\n")

    # 2. the safe default: swap everything
    swap_all = execute(graph, Classification.all_swap(graph), machine)
    print(f"all-swap baseline: {images_per_second(swap_all, batch):7.1f} img/s")

    # 3. PoocH: profile, classify, execute
    result = PoocH(machine, PoochConfig(step1_sim_budget=600)).optimize(graph)
    print()
    print(result.summary())
    timeline = result.execute()
    print(f"\nPoocH execution:   {images_per_second(timeline, batch):7.1f} img/s "
          f"(peak GPU memory {timeline.device_peak / GiB:.2f} GiB)")
    speedup = swap_all.makespan / timeline.makespan
    print(f"speedup over all-swap: x{speedup:.2f}")


if __name__ == "__main__":
    main()
