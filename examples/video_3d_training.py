#!/usr/bin/env python
"""Out-of-core 3D video training — the batch-size-1 blow-up (Figs. 4, 21, 22).

3D CNNs can exceed GPU memory with a *single* clip, where data parallelism
cannot help; out-of-core execution is the only option.  This example sweeps
the input volume of 3D-ResNeXt-101, shows where in-core fails, and trains
each out-of-core point with PoocH.

Run:  python examples/video_3d_training.py     (~2-5 min)
"""

from repro import (
    Classification,
    OutOfMemoryError,
    PoocH,
    PoochConfig,
    X86_V100,
    execute,
    resnext101_3d,
)
from repro.analysis import Table
from repro.common.units import GiB
from repro.runtime import MapClass

SIZES = [(16, 112, 112), (64, 448, 448), (96, 512, 512)]


def main() -> None:
    machine = X86_V100
    table = Table(
        "3D-ResNeXt-101, batch=1, x86 machine",
        ["input (TxHxW)", "memory (GiB)", "in-core", "PoocH iter (s)",
         "plan (keep/swap/rec)"],
    )
    for size in SIZES:
        g = resnext101_3d(size)
        need = g.training_memory_bytes() / GiB
        try:
            r = execute(g, Classification.all_keep(g), machine)
            incore = f"{r.makespan:.2f} s"
        except OutOfMemoryError:
            incore = "OOM"
        res = PoocH(machine, PoochConfig(step1_sim_budget=400)).optimize(g)
        t = res.execute()
        c = res.classification.counts()
        plan = f"{c[MapClass.KEEP]}/{c[MapClass.SWAP]}/{c[MapClass.RECOMPUTE]}"
        label = "x".join(map(str, size))
        table.add(label, need, incore, t.makespan, plan)
        print(f"done {label}: iter {t.makespan:.2f}s, plan {plan}")

    print()
    print(table.render())
    print("\nEven at batch 1 the large clips exceed the 16 GB GPU; PoocH "
          "keeps training with bounded slowdown because 3D convolutions "
          "hide most transfers (the paper's <10% degradation claim).")


if __name__ == "__main__":
    main()
