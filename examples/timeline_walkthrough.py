#!/usr/bin/env python
"""The paper's worked example, rendered: Figs. 2, 7, 10, 11 on an 8-layer net.

Prints ASCII timelines of the compute / D2H / H2D streams for:
  * in-core execution (Fig. 2 — dense compute),
  * swap-all without swap-in scheduling (Fig. 7 — idle regions appear),
  * swap-all with PoocH's eager swap-in schedule (Fig. 10 right),
  * the PoocH-optimized hybrid plan,
and shows the extracted un-hidden swap sets L_O / L_I (Fig. 11) in between.

Run:  python examples/timeline_walkthrough.py     (seconds)
"""

from repro import PoocH, PoochConfig, X86_V100, execute, Classification
from repro.analysis import render_timeline, total_idle
from repro.baselines import plan_swap_all, plan_swap_all_unscheduled
from repro.gpusim import StreamName
from repro.models import poster_example
from repro.pooch import analyze_overlap
from repro.runtime import run_profiling

BATCH = 2048  # ~1 GiB per feature map: PCIe swaps genuinely hurt
WIDTH = 110


def show(title: str, result) -> None:
    idle = total_idle(result, StreamName.COMPUTE)
    print(f"\n== {title} ==")
    print(f"iteration {result.makespan * 1e3:.1f} ms, compute idle "
          f"{idle * 1e3:.1f} ms ({idle / result.makespan:.0%})")
    print(render_timeline(result, width=WIDTH))


def main() -> None:
    g = poster_example(batch=BATCH)
    machine = X86_V100
    print(g.summary())
    print("\nLegend: F=forward B=backward R=recompute o=swap-out i=swap-in "
          "(numbers are layer indices)")

    show("Fig. 2: in-core", execute(g, Classification.all_keep(g), machine))
    show("Fig. 7: swap-all, naive swap-in",
         plan_swap_all_unscheduled(g).execute(g, machine))
    show("Fig. 10 (right): swap-all, eager swap-in",
         plan_swap_all(g).execute(g, machine))

    profile = run_profiling(g, machine)
    overlap = analyze_overlap(profile.baseline)
    print(f"\n== Fig. 11: swaps not hidden by computation ==\n"
          f"{overlap.describe()}")

    result = PoocH(machine, PoochConfig(step1_sim_budget=400)).optimize(
        g, profile=profile
    )
    print()
    print(result.summary())
    print(result.classification.describe(g))
    show("PoocH hybrid plan", result.execute())


if __name__ == "__main__":
    main()
